package gpu

// The data-oriented executor.
//
// The simulator's inner loop used to interpret the kernel IR through a
// graph of *threadState/*warpState/*cuState objects: every tick walked
// pointers, re-derived cache-line indices with a division, switched on
// the op code, rescanned every warp of every CU for runnable threads,
// and kept completion events in a binary heap. This file replaces that
// with flat, index-addressed state:
//
//   - struct-of-arrays thread/warp/CU state (ip/ipEnd/outst/atBarrier/
//     done are parallel slices indexed by thread ID) so the scheduler
//     walks contiguous memory;
//   - a precompiled step table: each instruction is decoded once per
//     launch into a stepInstr carrying its cache line, base latency and
//     dispatch flags, so issue and completion never switch on the op
//     or divide by the line size;
//   - incremental runnable-warp tracking: per-warp runnable counters
//     roll up into per-CU counters and a live-CU count, replacing the
//     O(all warps × all threads) anyRunnable rescan every CU did every
//     tick;
//   - a timing wheel (calendar queue) for completion events in place
//     of the binary heap: O(1) push, O(1) drain of the current tick's
//     bucket, and a bitmap scan to fast-forward e.now across idle gaps;
//   - a launch-frame cache: the warp partition, thread→wg/warp maps and
//     the initial round-robin admission plan depend only on the launch
//     shape (Workgroups × WorkgroupSize), not on program bytes, so
//     repeated launches of the same shape — the steady-state campaign
//     case — skip that rebuild entirely.
//
// Everything observable is byte-identical to the old interpreter: the
// RNG draw sequence (one Intn per CU with candidates per tick, jitter/
// pressure/bug draws per memory op), trace events, stats, final
// registers and memory. The golden tests in golden_test.go, captured
// from the old implementation, pin this contract; DESIGN.md documents
// the frozen-draw-order invariant any future change must preserve.

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/xrand"
)

// stepFlags classifies a decoded instruction for branch-light dispatch.
type stepFlags uint8

const (
	// stepMem marks memory operations (load/store/rmw/stress).
	stepMem stepFlags = 1 << iota
	// stepLoadLike marks ops that complete as loads (OpLoad,
	// OpStressLoad) for program-order-per-location tracking.
	stepLoadLike
	// stepWritesReg marks ops that write a register at completion
	// (OpLoad, OpExchange).
	stepWritesReg
	// stepStoreLike marks ops that write memory at completion
	// (OpStore, OpStressStore).
	stepStoreLike
	// stepFence marks OpFence.
	stepFence
	// stepBarrier marks OpBarrier.
	stepBarrier
)

// stepInstr is one decoded instruction in the per-launch step table:
// the line index and base latency are precomputed so the issue path
// performs no division and no op switch.
type stepInstr struct {
	addr    uint32
	line    uint32
	imm     uint32
	baseLat int32
	reg     uint16
	op      Op
	flags   stepFlags
}

// locAssign remembers the latest assigned completion time per address a
// thread has touched, for program-order-per-location enforcement.
type locAssign struct {
	addr   uint32
	isLoad bool
	time   int64
}

// wheelEvent is one pending memory completion: the issuing thread and
// the instruction's absolute index in the step table. Completion time
// and ordering are implied by the bucket it sits in (see pushEvent).
type wheelEvent struct {
	tid  int32
	code int32
}

// cuCache is the per-CU line cache backing the stale-cache defect; it
// exists only when that bug is enabled.
type cuCache struct {
	lines map[uint32][]uint32
	fifo  []uint32
}

// launchFrame caches every launch structure that depends only on the
// dispatch shape (Workgroups × WorkgroupSize) and the device profile —
// not on program bytes. Campaign steady state launches the same shape
// every iteration with fresh programs, so the warp partition, the
// thread→workgroup/warp maps and the initial round-robin admission
// plan are computed once and reused; reset only copies the mutable
// parts back to their initial values.
type launchFrame struct {
	workgroups int
	wgSize     int
	warpsPerWG int
	nWarps     int

	warpStart []int32 // warp → first thread ID
	warpEnd   []int32 // warp → one past last thread ID
	warpWG    []int32 // warp → workgroup
	wgOf      []int32 // thread → workgroup (no division at runtime)
	warpOf    []int32 // thread → warp

	wgCU0    []int32   // wg → initially assigned CU, or -1 if pending
	cuWarps0 [][]int32 // CU → initially resident warps, admission order
	cuFree0  []int32   // CU → free slots after initial admission
	pending0 []int32   // workgroups awaiting a CU slot, in order
}

// buildFrame replays the old reset's round-robin admission over the
// shape only, producing the cached plan.
func buildFrame(workgroups, wgSize, warpSize, maxWGPerCU, nCUs int) *launchFrame {
	warpsPerWG := (wgSize + warpSize - 1) / warpSize
	nThreads := workgroups * wgSize
	f := &launchFrame{
		workgroups: workgroups,
		wgSize:     wgSize,
		warpsPerWG: warpsPerWG,
		nWarps:     workgroups * warpsPerWG,
		warpStart:  make([]int32, workgroups*warpsPerWG),
		warpEnd:    make([]int32, workgroups*warpsPerWG),
		warpWG:     make([]int32, workgroups*warpsPerWG),
		wgOf:       make([]int32, nThreads),
		warpOf:     make([]int32, nThreads),
		wgCU0:      make([]int32, workgroups),
		cuWarps0:   make([][]int32, nCUs),
		cuFree0:    make([]int32, nCUs),
		pending0:   nil,
	}
	for wg := 0; wg < workgroups; wg++ {
		for k := 0; k < warpsPerWG; k++ {
			w := wg*warpsPerWG + k
			start := wg*wgSize + k*warpSize
			end := start + warpSize
			if end > (wg+1)*wgSize {
				end = (wg + 1) * wgSize
			}
			f.warpStart[w] = int32(start)
			f.warpEnd[w] = int32(end)
			f.warpWG[w] = int32(wg)
		}
		for l := 0; l < wgSize; l++ {
			tid := wg*wgSize + l
			f.wgOf[tid] = int32(wg)
			f.warpOf[tid] = int32(wg*warpsPerWG + l/warpSize)
		}
	}
	for c := range f.cuFree0 {
		f.cuFree0[c] = int32(maxWGPerCU)
	}
	cu := 0
	for wg := 0; wg < workgroups; wg++ {
		placed := false
		for probe := 0; probe < nCUs; probe++ {
			c := (cu + probe) % nCUs
			if f.cuFree0[c] > 0 {
				f.cuFree0[c]--
				f.wgCU0[wg] = int32(c)
				for k := 0; k < warpsPerWG; k++ {
					f.cuWarps0[c] = append(f.cuWarps0[c], int32(wg*warpsPerWG+k))
				}
				cu = (cu + probe + 1) % nCUs
				placed = true
				break
			}
		}
		if !placed {
			f.wgCU0[wg] = -1
			f.pending0 = append(f.pending0, int32(wg))
		}
	}
	return f
}

// exec is the reusable executor scratch a Device owns. All state is
// struct-of-arrays, indexed by thread/warp/workgroup/CU ID.
type exec struct {
	d    *Device
	rng  *xrand.Rand
	spec LaunchSpec

	// ctx, when non-nil, is the launch's cancellation context; run()
	// polls it on a coarse step budget. It is set around run() by RunCtx
	// and cleared afterward so the scratch never retains a caller's ctx.
	ctx context.Context

	mem []uint32

	// Profile scalars cached flat so the hot loop never chases the
	// profile pointer, plus per-op decode tables (latency and flags are
	// pure functions of the op for a fixed profile).
	maxOutstanding int32
	jitterBase     int
	globalThresh   int
	globalWeight   float64
	lineThresh     int
	lineWeight     float64
	maxPressure    int
	lineWords      uint32
	opLat          [8]int32
	opFlags        [8]stepFlags
	dropFences     bool

	frame *launchFrame

	// Step table: decoded instructions for every thread, concatenated.
	// ipStart[tid]..ipEnd[tid] is thread tid's window; ip[tid] is its
	// program counter as an absolute index into code.
	code    []stepInstr
	ipStart []int32
	ip      []int32
	ipEnd   []int32

	// Per-thread state.
	outst     []int32
	atBarrier []bool
	done      []bool
	locs      [][]locAssign
	regs      [][]uint32 // per-thread windows into regArena; also the result
	regArena  []uint32

	// Per-workgroup state.
	wgCU      []int32
	wgActive  []int32
	wgArrived []int32

	// Per-warp and per-CU incremental runnable tracking. A thread is
	// runnable iff ip < ipEnd && !atBarrier; warpMask holds one bit per
	// lane (warps never exceed 64 lanes), cuRunnable counts resident
	// warps with a nonzero mask, liveCUs counts CUs with a nonzero
	// count. The scheduler consults masks and counters instead of
	// rescanning threads, and the issue loop walks only set bits.
	warpMask   []uint64
	cuWarps    [][]int32
	cuFree     []int32
	cuRunnable []int32
	liveCUs    int

	caches []cuCache // stale-cache defect state; nil when bug disabled

	pendingWGs  []int32
	pendingHead int

	// Timing wheel: completion events bucketed by time & wheelMask.
	// Every pending time lies in (now, now+maxEventLat], and the wheel
	// is sized past that horizon, so each bucket holds at most one
	// distinct absolute time (bucketTime) and draining tick T is
	// exactly draining bucket T&mask. Within a bucket, append order is
	// issue order, which reproduces the old heap's (time, seq) order.
	buckets       [][]wheelEvent
	bucketTime    []int64
	bucketBits    []uint64
	wheelMask     int64
	maxEventLat   int64
	pendingEvents int

	now int64

	inFlight     int
	lineInFlight []int32

	retired int
	stats   RunStats

	candBuf []int32 // scratch for scheduler candidates

	// lineBufs is a free list of cache-line staging buffers, refilled
	// on eviction and reset so fillLine stops allocating per line.
	lineBufs [][]uint32

	// res is the result scratch returned to the caller; overwritten by
	// the next run.
	res RunResult

	// tracing gates event recording. Call sites guard emit with it so
	// the tracing-off hot path pays one branch and never constructs
	// (or heap-allocates for) the event value.
	tracing bool
	trace   []TraceEvent
}

// emit records a trace event. Callers must check e.tracing first; emit
// itself appends unconditionally.
func (e *exec) emit(ev TraceEvent) {
	e.trace = append(e.trace, ev)
}

// getExec returns the device's reusable executor, reset for this
// launch. The executor — including the RunResult it produces — is
// scratch owned by the device and is clobbered by the next run.
func (d *Device) getExec(spec LaunchSpec, rng *xrand.Rand) *exec {
	e := d.scratch
	if e == nil {
		e = &exec{d: d}
		p := &d.prof
		e.maxOutstanding = int32(p.MaxOutstanding)
		e.jitterBase = p.JitterBase
		e.globalThresh = p.GlobalPressureThresh
		e.globalWeight = p.GlobalPressureWeight
		e.lineThresh = p.LinePressureThresh
		e.lineWeight = p.LinePressureWeight
		e.maxPressure = p.MaxPressureLat
		e.lineWords = uint32(p.LineWords)
		e.dropFences = d.bugs.DropFences
		for op := OpLoad; op <= OpStressStore; op++ {
			var lat int32 = 1
			var fl stepFlags
			switch op {
			case OpLoad:
				lat, fl = int32(p.LatLoad), stepMem|stepLoadLike|stepWritesReg
			case OpStressLoad:
				lat, fl = int32(p.LatLoad), stepMem|stepLoadLike
			case OpStore:
				lat, fl = int32(p.LatStore), stepMem|stepStoreLike
			case OpStressStore:
				lat, fl = int32(p.LatStore), stepMem|stepStoreLike
			case OpExchange:
				lat, fl = int32(p.LatRMW), stepMem|stepWritesReg
			case OpFence:
				fl = stepFence
			case OpBarrier:
				fl = stepBarrier
			}
			e.opLat[op] = lat
			e.opFlags[op] = fl
		}
		// Wheel horizon: a completion scheduled at tick T satisfies
		// T - now <= maxLat + jitter + maxPressure (the po-loc bump of
		// +1 past a predecessor cannot exceed it either, because the
		// predecessor issued at least one tick earlier with the same
		// bound). Size the wheel one power of two past that horizon so
		// buckets never carry two distinct times.
		maxBase := p.LatLoad
		if p.LatStore > maxBase {
			maxBase = p.LatStore
		}
		if p.LatRMW > maxBase {
			maxBase = p.LatRMW
		}
		e.maxEventLat = int64(maxBase + p.JitterBase + p.MaxPressureLat)
		size := 1
		for int64(size) < e.maxEventLat+2 {
			size <<= 1
		}
		e.buckets = make([][]wheelEvent, size)
		e.bucketTime = make([]int64, size)
		e.bucketBits = make([]uint64, (size+63)/64)
		e.wheelMask = int64(size - 1)

		// CU count and defect set are fixed per device, so the buggy
		// caches are allocated exactly once.
		e.cuWarps = make([][]int32, p.CUs)
		e.cuFree = make([]int32, p.CUs)
		e.cuRunnable = make([]int32, p.CUs)
		if d.bugs.StaleCache {
			e.caches = make([]cuCache, p.CUs)
			for i := range e.caches {
				e.caches[i].lines = map[uint32][]uint32{}
			}
		}
		d.scratch = e
	}
	e.reset(spec, rng)
	return e
}

// growI32 re-slices s to length n, growing capacity as needed. The
// contents are unspecified; callers must fill every element.
func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// reset prepares the executor for one launch, reusing every allocation
// left over from prior runs: all state slices keep their capacity,
// register files are carved from one flat arena, the timing wheel and
// scheduler scratch retain their buffers, and the launch frame (warp
// partition + admission plan) is reused outright when the dispatch
// shape matches the previous launch. Resetting consumes no randomness
// and zeroes everything a fresh executor would zero, so a warm
// executor is draw-for-draw and bit-for-bit identical to a cold one.
func (e *exec) reset(spec LaunchSpec, rng *xrand.Rand) {
	e.rng = rng
	e.spec = spec

	if cap(e.mem) < spec.MemWords {
		e.mem = make([]uint32, spec.MemWords)
	} else {
		e.mem = e.mem[:spec.MemWords]
		clear(e.mem)
	}

	f := e.frame
	if f == nil || f.workgroups != spec.Workgroups || f.wgSize != spec.WorkgroupSize {
		f = buildFrame(spec.Workgroups, spec.WorkgroupSize,
			e.d.prof.WarpSize, e.d.prof.MaxWGPerCU, len(e.cuWarps))
		e.frame = f
	}
	nThreads := spec.Threads()

	// Decode every program into the step table in one fused pass that
	// also computes register demand (the old reset scanned each program
	// twice more for NumRegs).
	e.ipStart = growI32(e.ipStart, nThreads)
	e.ip = growI32(e.ip, nThreads)
	e.ipEnd = growI32(e.ipEnd, nThreads)
	e.outst = growI32(e.outst, nThreads)
	e.atBarrier = growBool(e.atBarrier, nThreads)
	e.done = growBool(e.done, nThreads)
	if cap(e.regs) < nThreads {
		e.regs = make([][]uint32, nThreads)
	}
	e.regs = e.regs[:nThreads]
	if cap(e.locs) < nThreads {
		grown := make([][]locAssign, nThreads)
		copy(grown, e.locs[:cap(e.locs)])
		e.locs = grown
	}
	e.locs = e.locs[:nThreads]

	total := 0
	for _, p := range spec.Programs {
		total += len(p)
	}
	if cap(e.code) < total {
		e.code = make([]stepInstr, total)
	}
	e.code = e.code[:total]

	// One fused per-instruction pass decodes into the step table and
	// computes register demand together (the old reset walked every
	// program once for NumRegs and again to build thread state).
	lw := e.lineWords
	totalRegs := 0
	pos := int32(0)
	for tid, p := range spec.Programs {
		e.ipStart[tid] = pos
		n := int32(0)
		for _, in := range p {
			e.code[pos] = stepInstr{
				addr:    in.Addr,
				line:    in.Addr / lw,
				imm:     in.Imm,
				baseLat: e.opLat[in.Op&7],
				reg:     in.Reg,
				op:      in.Op,
				flags:   e.opFlags[in.Op&7],
			}
			if (in.Op == OpLoad || in.Op == OpExchange) && int32(in.Reg)+1 > n {
				n = int32(in.Reg) + 1
			}
			pos++
		}
		// Stash the register count in outst until the arena is carved
		// below (outst is rewritten right after).
		e.outst[tid] = n
		totalRegs += int(n)
	}
	if cap(e.regArena) < totalRegs {
		e.regArena = make([]uint32, totalRegs)
	} else {
		e.regArena = e.regArena[:totalRegs]
		clear(e.regArena)
	}

	e.retired = 0
	regOff := 0
	e.wgCU = growI32(e.wgCU, spec.Workgroups)
	e.wgActive = growI32(e.wgActive, spec.Workgroups)
	e.wgArrived = growI32(e.wgArrived, spec.Workgroups)
	copy(e.wgCU, f.wgCU0)
	for wg := range e.wgActive {
		e.wgActive[wg] = 0
		e.wgArrived[wg] = 0
	}
	if cap(e.warpMask) < f.nWarps {
		e.warpMask = make([]uint64, f.nWarps)
	}
	e.warpMask = e.warpMask[:f.nWarps]
	for w := range e.warpMask {
		e.warpMask[w] = 0
	}

	for tid, p := range spec.Programs {
		nregs := int(e.outst[tid])
		start := e.ipStart[tid]
		e.ip[tid] = start
		e.ipEnd[tid] = start + int32(len(p))
		e.outst[tid] = 0
		e.atBarrier[tid] = false
		if nregs > 0 {
			e.regs[tid] = e.regArena[regOff : regOff+nregs : regOff+nregs]
			regOff += nregs
		} else {
			e.regs[tid] = nil
		}
		e.locs[tid] = e.locs[tid][:0]
		if len(p) == 0 {
			e.done[tid] = true
			e.retired++
		} else {
			e.done[tid] = false
			e.wgActive[f.wgOf[tid]]++
			w := f.warpOf[tid]
			e.warpMask[w] |= 1 << uint(int32(tid)-f.warpStart[w])
		}
	}

	// CU state: copy the cached admission plan and roll runnable
	// counters up from the warps.
	e.liveCUs = 0
	for c := range e.cuWarps {
		init := f.cuWarps0[c]
		if cap(e.cuWarps[c]) < len(init) {
			e.cuWarps[c] = make([]int32, len(init))
		}
		e.cuWarps[c] = e.cuWarps[c][:len(init)]
		copy(e.cuWarps[c], init)
		e.cuFree[c] = f.cuFree0[c]
		run := int32(0)
		for _, w := range init {
			if e.warpMask[w] != 0 {
				run++
			}
		}
		e.cuRunnable[c] = run
		if run > 0 {
			e.liveCUs++
		}
		if e.caches != nil {
			cc := &e.caches[c]
			for _, vals := range cc.lines {
				e.lineBufs = append(e.lineBufs, vals)
			}
			clear(cc.lines)
			cc.fifo = cc.fifo[:0]
		}
	}

	if cap(e.pendingWGs) < len(f.pending0) {
		e.pendingWGs = make([]int32, len(f.pending0))
	}
	e.pendingWGs = e.pendingWGs[:len(f.pending0)]
	copy(e.pendingWGs, f.pending0)
	e.pendingHead = 0

	// The wheel is empty after a completed run (threads only retire
	// once their ops complete); after an error or cancellation it may
	// not be, so clear via the occupancy bitmap.
	if e.pendingEvents > 0 {
		for wi, word := range e.bucketBits {
			for word != 0 {
				b := wi<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				e.buckets[b] = e.buckets[b][:0]
			}
			e.bucketBits[wi] = 0
		}
	}
	e.pendingEvents = 0
	e.now = 0
	e.inFlight = 0

	lines := (spec.MemWords + int(lw) - 1) / int(lw)
	if cap(e.lineInFlight) < lines {
		e.lineInFlight = make([]int32, lines)
	} else {
		e.lineInFlight = e.lineInFlight[:lines]
		clear(e.lineInFlight)
	}
	e.stats = RunStats{}
}

// result assembles the run's outcome into the executor-owned scratch.
func (e *exec) result() *RunResult {
	e.stats.Ticks = e.now
	e.res = RunResult{
		Registers:  e.regs,
		Memory:     e.mem,
		SimSeconds: float64(e.now+e.d.prof.LaunchOverheadTicks) / e.d.prof.ClockHz,
		Stats:      e.stats,
	}
	return &e.res
}

// ---- incremental runnable tracking ----

// decRunnable records that thread tid stopped being runnable (its ip
// reached ipEnd or it parked at a barrier).
func (e *exec) decRunnable(tid int32) {
	w := e.frame.warpOf[tid]
	m := e.warpMask[w] &^ (1 << uint(tid-e.frame.warpStart[w]))
	e.warpMask[w] = m
	if m == 0 {
		c := e.wgCU[e.frame.warpWG[w]]
		e.cuRunnable[c]--
		if e.cuRunnable[c] == 0 {
			e.liveCUs--
		}
	}
}

// incRunnable records that thread tid became runnable again (barrier
// release with instructions remaining).
func (e *exec) incRunnable(tid int32) {
	w := e.frame.warpOf[tid]
	if e.warpMask[w] == 0 {
		c := e.wgCU[e.frame.warpWG[w]]
		if e.cuRunnable[c] == 0 {
			e.liveCUs++
		}
		e.cuRunnable[c]++
	}
	e.warpMask[w] |= 1 << uint(tid-e.frame.warpStart[w])
}

// cancelCheckSteps is the executor's cancellation poll granularity:
// one non-blocking ctx check per this many scheduler steps. Coarse on
// purpose — a per-step check would put a channel select on the hottest
// loop in the simulator — yet a hung-but-below-watchdog kernel still
// stops within thousands of steps (microseconds of host time) of a
// cancel, far below the watchdog's tick deadline.
const cancelCheckSteps = 4096

func (e *exec) run() error {
	total := len(e.ip)
	deadline := e.d.watchdogDeadline()
	var cancelled <-chan struct{}
	if e.ctx != nil {
		cancelled = e.ctx.Done() // nil for context.Background(); the select then never fires
	}
	check := 1 // check on the first step so a pre-cancelled ctx fails fast
	for e.retired < total {
		if check--; check <= 0 {
			check = cancelCheckSteps
			select {
			case <-cancelled:
				return fmt.Errorf("gpu: kernel cancelled at tick %d on %s: %w",
					e.now, e.d.prof.ShortName, e.ctx.Err())
			default:
			}
		}
		if e.now > deadline {
			// The watchdog converts a hung kernel into a typed, retryable
			// failure instead of spinning toward the simulation bound.
			return &DeviceError{Kind: FaultHang, Device: e.d.prof.ShortName, Tick: e.now}
		}
		// Drain this tick's completions in one batch. Events are never
		// scheduled in the past and e.now only lands on ticks that hold
		// work, so the current bucket is the entire ≤ now backlog.
		// complete() never schedules new events, so iterating the
		// detached slice is safe.
		if e.pendingEvents > 0 {
			b := int(e.now & e.wheelMask)
			if e.bucketBits[b>>6]&(1<<(uint(b)&63)) != 0 && e.bucketTime[b] == e.now {
				evs := e.buckets[b]
				e.buckets[b] = evs[:0]
				e.bucketBits[b>>6] &^= 1 << (uint(b) & 63)
				e.pendingEvents -= len(evs)
				for _, ev := range evs {
					e.complete(ev.tid, ev.code)
				}
			}
		}
		issued := false
		if e.liveCUs > 0 {
			for c := range e.cuWarps {
				if e.cuRunnable[c] == 0 {
					continue
				}
				cand := e.candBuf[:0]
				for _, w := range e.cuWarps[c] {
					if e.warpMask[w] != 0 {
						cand = append(cand, w)
					}
				}
				e.candBuf = cand
				// cuRunnable > 0 guarantees candidates; Intn(0) would
				// panic loudly on a bookkeeping bug.
				w := cand[e.rng.Intn(len(cand))]
				if e.issueWarp(w, int32(c)) {
					issued = true
				}
			}
		}
		if issued {
			e.now++
			continue
		}
		if e.pendingEvents > 0 {
			// Fast-forward across the idle gap to the next completion.
			e.now = e.nextEventTime()
			continue
		}
		if e.retired < total {
			return fmt.Errorf("gpu: deadlock at tick %d: %d/%d threads retired",
				e.now, e.retired, total)
		}
	}
	return nil
}

// issueWarp walks the drawn warp's runnable threads in lane order,
// issuing at most one instruction per thread. The runnable mask makes
// done and barrier-parked lanes — the dominant case in the steady
// state — cost nothing: the loop touches only set bits. The mask is
// re-read every step because a barrier retiring mid-warp releases
// parked lanes; the passed boundary restricts the re-read to lanes
// after the releasing one, matching the old sequential scan, where
// earlier lanes had already taken (and failed) their turn this tick.
func (e *exec) issueWarp(w, c int32) bool {
	issued := false
	start := e.frame.warpStart[w]
	var passed uint64 // lanes at or below the scan point
	for {
		m := e.warpMask[w] &^ passed
		if m == 0 {
			return issued
		}
		lane := bits.TrailingZeros64(m)
		passed |= (2 << uint(lane)) - 1
		tid := start + int32(lane)
		ip := e.ip[tid]
		in := &e.code[ip]
		if in.flags&stepMem != 0 {
			if e.outst[tid] >= e.maxOutstanding {
				continue
			}
			e.issueMem(tid, ip, in)
			issued = true
			continue
		}
		if e.issueSync(tid, ip, in) {
			issued = true
		}
	}
}

// issueSync processes a fence or barrier step at the front of thread
// tid's program; it returns whether the step retired this tick.
func (e *exec) issueSync(tid, ip int32, in *stepInstr) bool {
	if in.flags&stepFence != 0 {
		if e.dropFences {
			// The buggy compiler erased the fence's memory semantics;
			// it costs an issue slot but orders nothing.
			e.ip[tid] = ip + 1
			if ip+1 == e.ipEnd[tid] {
				e.decRunnable(tid)
			}
			e.stats.DroppedFences++
			e.stats.Instructions++
			e.maybeRetire(tid)
			return true
		}
		if e.outst[tid] > 0 {
			return false // fence waits for all prior ops to complete
		}
		if e.tracing {
			e.emit(TraceEvent{Tick: e.now, Thread: tid, Index: ip - e.ipStart[tid], Kind: TraceIssue, Op: OpFence})
		}
		e.ip[tid] = ip + 1
		if ip+1 == e.ipEnd[tid] {
			e.decRunnable(tid)
		}
		e.stats.Instructions++
		e.maybeRetire(tid)
		return true
	}
	// Barrier.
	if e.outst[tid] > 0 {
		return false // barrier implies fence ordering
	}
	if e.tracing {
		e.emit(TraceEvent{Tick: e.now, Thread: tid, Index: ip - e.ipStart[tid], Kind: TraceIssue, Op: OpBarrier})
	}
	e.ip[tid] = ip + 1
	e.stats.Instructions++
	wg := e.frame.wgOf[tid]
	e.atBarrier[tid] = true
	e.decRunnable(tid)
	e.wgArrived[wg]++
	e.releaseBarrierIfReady(wg)
	return true
}

// issueMem issues one memory operation whose MaxOutstanding headroom
// the caller already checked.
func (e *exec) issueMem(tid, ip int32, in *stepInstr) {
	line := in.line
	lat, pstall := e.latency(in, line)
	e.stats.PressureStalls += pstall
	ct := e.now + int64(lat)
	if ct <= e.now {
		ct = e.now + 1
	}
	isLoad := in.flags&stepLoadLike != 0
	locs := e.locs[tid]
	var prev *locAssign
	for i := range locs {
		if locs[i].addr == in.addr {
			prev = &locs[i]
			break
		}
	}
	if prev != nil {
		if ct <= prev.time {
			if isLoad && prev.isLoad && e.coherenceRRFires(line) {
				// Injected defect: the second load completes before the
				// first, violating program order per location.
				e.stats.RelaxedRR++
			} else {
				ct = prev.time + 1
			}
		}
		if ct > prev.time {
			prev.time = ct
		}
		prev.isLoad = isLoad
	} else {
		e.locs[tid] = append(locs, locAssign{addr: in.addr, isLoad: isLoad, time: ct})
	}
	e.pushEvent(ct, tid, ip)
	if e.tracing {
		e.emit(TraceEvent{Tick: e.now, Thread: tid, Index: ip - e.ipStart[tid], Kind: TraceIssue, Op: in.op, Addr: in.addr})
	}
	e.ip[tid] = ip + 1
	if ip+1 == e.ipEnd[tid] {
		e.decRunnable(tid)
	}
	e.outst[tid]++
	e.inFlight++
	if e.inFlight > e.stats.MaxGlobalInFlight {
		e.stats.MaxGlobalInFlight = e.inFlight
	}
	e.lineInFlight[line]++
	e.stats.Instructions++
}

// coherenceRRFires decides whether the load-load reordering defect
// triggers for an access to the given line.
func (e *exec) coherenceRRFires(line uint32) bool {
	b := &e.d.bugs
	if !b.CoherenceRR {
		return false
	}
	if int(e.lineInFlight[line]) < b.CoherenceRRPressure {
		return false
	}
	return e.rng.Bool(b.CoherenceRRProb)
}

// latency samples an operation's completion latency, including
// contention-dependent inflation. The base latency is precomputed in
// the step table, so only the jitter and pressure draws remain.
func (e *exec) latency(in *stepInstr, line uint32) (int, int64) {
	lat := int(in.baseLat)
	if e.jitterBase > 0 {
		lat += e.rng.Intn(e.jitterBase + 1)
	}
	pressure := 0.0
	if g := e.inFlight - e.globalThresh; g > 0 {
		pressure += e.globalWeight * float64(g)
	}
	if l := int(e.lineInFlight[line]) - e.lineThresh; l > 0 {
		pressure += e.lineWeight * float64(l)
	}
	if pressure <= 0 {
		return lat, 0
	}
	extra := int(e.rng.Float64() * pressure)
	if extra > e.maxPressure {
		extra = e.maxPressure
	}
	return lat + extra, int64(extra)
}

// complete applies one finished memory operation.
func (e *exec) complete(tid, code int32) {
	in := &e.code[code]
	var traced uint32
	switch {
	case in.flags&stepLoadLike != 0:
		v := e.loadValue(e.wgCU[e.frame.wgOf[tid]], in.addr)
		if in.flags&stepWritesReg != 0 {
			e.regs[tid][in.reg] = v
		}
		traced = v
	case in.flags&stepStoreLike != 0:
		e.mem[in.addr] = in.imm
		e.storeToCache(e.wgCU[e.frame.wgOf[tid]], in.addr, in.imm)
		traced = in.imm
	default: // OpExchange
		// Atomics bypass the per-CU cache and act on memory directly,
		// as on real parts where RMWs resolve at a shared cache level.
		old := e.mem[in.addr]
		e.mem[in.addr] = in.imm
		e.regs[tid][in.reg] = old
		e.storeToCache(e.wgCU[e.frame.wgOf[tid]], in.addr, in.imm)
		traced = old
	}
	if e.tracing {
		e.emit(TraceEvent{Tick: e.now, Thread: tid, Index: code - e.ipStart[tid], Kind: TraceComplete, Op: in.op, Addr: in.addr, Value: traced})
	}
	e.outst[tid]--
	e.inFlight--
	e.lineInFlight[in.line]--
	e.stats.MemOps++
	e.maybeRetire(tid)
}

// loadValue resolves a load's value, via the (buggy) per-CU cache when
// the stale-cache defect is enabled.
func (e *exec) loadValue(cu int32, addr uint32) uint32 {
	if e.caches == nil {
		return e.mem[addr]
	}
	c := &e.caches[cu]
	line := addr / e.lineWords
	off := addr % e.lineWords
	if vals, ok := c.lines[line]; ok {
		if e.rng.Bool(e.d.prof.StaleHitProb) {
			v := vals[off]
			if v != e.mem[addr] {
				e.stats.StaleReads++
			}
			return v
		}
		// A bypassing read: the value comes from memory but the resident
		// line is not refreshed — on the buggy device nothing ever
		// re-validates it.
		return e.mem[addr]
	}
	e.fillLine(c, line)
	return e.mem[addr]
}

// fillLine snapshots a line into the CU cache, evicting FIFO. Staging
// buffers cycle through the executor's free list: evicted lines donate
// their buffer back, so steady-state fills allocate nothing. The FIFO
// compacts in place rather than re-slicing forward, which would migrate
// the slice base and force append to reallocate.
func (e *exec) fillLine(c *cuCache, line uint32) {
	prof := &e.d.prof
	if _, ok := c.lines[line]; !ok {
		if len(c.fifo) >= prof.CacheLines && len(c.fifo) > 0 {
			victim := c.fifo[0]
			copy(c.fifo, c.fifo[1:])
			c.fifo = c.fifo[:len(c.fifo)-1]
			if vals, ok := c.lines[victim]; ok {
				e.lineBufs = append(e.lineBufs, vals)
			}
			delete(c.lines, victim)
		}
		c.fifo = append(c.fifo, line)
	}
	base := line * e.lineWords
	var vals []uint32
	if n := len(e.lineBufs); n > 0 {
		vals = e.lineBufs[n-1][:prof.LineWords]
		e.lineBufs = e.lineBufs[:n-1]
	} else {
		vals = make([]uint32, prof.LineWords)
	}
	for i := range vals {
		if int(base)+i < len(e.mem) {
			vals[i] = e.mem[int(base)+i]
		} else {
			vals[i] = 0
		}
	}
	c.lines[line] = vals
}

// storeToCache updates the storing CU's own copy of the line. A
// conformant device would also invalidate every other CU's copy; the
// stale-cache defect is precisely the absence of that invalidation, and
// caches only exist when the defect is enabled.
func (e *exec) storeToCache(cu int32, addr, val uint32) {
	if e.caches == nil {
		return
	}
	c := &e.caches[cu]
	line := addr / e.lineWords
	if vals, ok := c.lines[line]; ok {
		vals[addr%e.lineWords] = val
	}
}

// maybeRetire retires a thread whose program and outstanding ops are
// exhausted, releasing barriers and CU slots as workgroups drain.
func (e *exec) maybeRetire(tid int32) {
	if e.done[tid] || e.ip[tid] < e.ipEnd[tid] || e.outst[tid] > 0 {
		return
	}
	e.done[tid] = true
	e.retired++
	wg := e.frame.wgOf[tid]
	e.wgActive[wg]--
	e.releaseBarrierIfReady(wg)
	if e.wgActive[wg] == 0 {
		e.finishWorkgroup(wg)
	}
}

// releaseBarrierIfReady releases a workgroup barrier once every still
// active thread has arrived, restoring released threads' runnability.
func (e *exec) releaseBarrierIfReady(wg int32) {
	if e.wgArrived[wg] == 0 || e.wgArrived[wg] < e.wgActive[wg] {
		return
	}
	e.wgArrived[wg] = 0
	start := int32(int(wg) * e.frame.wgSize)
	end := start + int32(e.frame.wgSize)
	for tid := start; tid < end; tid++ {
		if e.atBarrier[tid] {
			e.atBarrier[tid] = false
			if e.ip[tid] < e.ipEnd[tid] {
				e.incRunnable(tid)
			}
		}
	}
}

// finishWorkgroup frees the CU slot and admits a pending workgroup.
func (e *exec) finishWorkgroup(wg int32) {
	c := e.wgCU[wg]
	// Drop the workgroup's warps from the CU's resident list; they are
	// all drained (every thread done), so runnable counters are
	// untouched. Compact in place to keep the backing array.
	keep := e.cuWarps[c][:0]
	for _, w := range e.cuWarps[c] {
		if e.frame.warpWG[w] != wg {
			keep = append(keep, w)
		}
	}
	e.cuWarps[c] = keep
	e.cuFree[c]++
	if e.pendingHead < len(e.pendingWGs) {
		next := e.pendingWGs[e.pendingHead]
		e.pendingHead++
		e.admit(next, c)
	}
}

// admit places a pending workgroup's warps on a CU.
func (e *exec) admit(wg, c int32) {
	e.wgCU[wg] = c
	e.cuFree[c]--
	f := e.frame
	first := int(wg) * f.warpsPerWG
	for k := 0; k < f.warpsPerWG; k++ {
		w := int32(first + k)
		e.cuWarps[c] = append(e.cuWarps[c], w)
		if e.warpMask[w] != 0 {
			if e.cuRunnable[c] == 0 {
				e.liveCUs++
			}
			e.cuRunnable[c]++
		}
	}
}

// ---- timing wheel ----

// pushEvent schedules a completion at tick ct. Each bucket holds one
// distinct absolute time (the wheel spans past the maximum event
// horizon), and append order within a bucket is issue order — exactly
// the (time, seq) order the old binary heap produced.
func (e *exec) pushEvent(ct int64, tid, code int32) {
	if ct-e.now > e.wheelMask {
		// Unreachable by the latency bound; grow defensively so a
		// future latency-model change degrades instead of corrupting.
		e.growWheel(ct)
	}
	b := int(ct & e.wheelMask)
	if e.bucketBits[b>>6]&(1<<(uint(b)&63)) == 0 {
		e.bucketBits[b>>6] |= 1 << (uint(b) & 63)
		e.bucketTime[b] = ct
		e.buckets[b] = e.buckets[b][:0]
	}
	e.buckets[b] = append(e.buckets[b], wheelEvent{tid: tid, code: code})
	e.pendingEvents++
}

// nextEventTime returns the earliest pending completion time. Pending
// times all lie in (now, now+horizon], so a circular bitmap scan from
// now+1 visits buckets in increasing time order.
func (e *exec) nextEventTime() int64 {
	start := int((e.now + 1) & e.wheelMask)
	wi := start >> 6
	word := e.bucketBits[wi] &^ ((1 << (uint(start) & 63)) - 1)
	n := len(e.bucketBits)
	for i := 0; i <= n; i++ {
		if word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			return e.bucketTime[b]
		}
		wi++
		if wi == n {
			wi = 0
		}
		word = e.bucketBits[wi]
	}
	panic("gpu: pending events but empty timing wheel")
}

// growWheel doubles the wheel until ct fits, re-bucketing pending
// events by their recorded absolute times (bucket order is preserved
// because rebucketing by time keeps issue order within a time).
func (e *exec) growWheel(ct int64) {
	type pending struct {
		time int64
		evs  []wheelEvent
	}
	var moved []pending
	for wi, word := range e.bucketBits {
		for word != 0 {
			b := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			moved = append(moved, pending{time: e.bucketTime[b], evs: e.buckets[b]})
			e.buckets[b] = nil
		}
		e.bucketBits[wi] = 0
	}
	size := int(e.wheelMask + 1)
	for int64(size) <= ct-e.now+1 {
		size <<= 1
	}
	e.buckets = make([][]wheelEvent, size)
	e.bucketTime = make([]int64, size)
	e.bucketBits = make([]uint64, (size+63)/64)
	e.wheelMask = int64(size - 1)
	e.pendingEvents = 0
	for _, p := range moved {
		for _, ev := range p.evs {
			e.pushEvent(p.time, ev.tid, ev.code)
		}
	}
}
