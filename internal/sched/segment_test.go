package sched

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/xrand"
)

// segSpec builds a deterministic multi-device campaign whose exec
// mixes successes, retried transients and permanent failures, all as
// pure functions of the split-seed RNG — the same shape the real
// campaigns have.
func segSpec(cells int) Spec {
	spec := Spec{Name: "seg", Seed: 99}
	for i := 0; i < cells; i++ {
		spec.Cells = append(spec.Cells, Cell{
			Key:    fmt.Sprintf("cell-%02d", i),
			Device: fmt.Sprintf("dev%d", i%3),
		})
	}
	return spec
}

type segVal struct {
	Key  string `json:"key"`
	Draw int    `json:"draw"`
}

func segExec(ctx context.Context, c Cell, rng *xrand.Rand) (segVal, error) {
	draw := rng.Intn(100)
	switch {
	case draw < 10:
		return segVal{}, Transient(fmt.Errorf("flaky %s", c.Key))
	case draw < 25:
		return segVal{}, fmt.Errorf("permanent %s", c.Key)
	}
	return segVal{Key: c.Key, Draw: draw}, nil
}

func runSeg(t *testing.T, spec Spec, breaker *BreakerOptions) *Report[segVal] {
	t.Helper()
	rep, err := RunContext(context.Background(), spec, segExec, Options[segVal]{
		Workers:    3,
		MaxRetries: 2,
		Backoff:    time.Millisecond,
		Collect:    true,
		Breaker:    breaker,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}
	return rep
}

// diffReports compares the byte-identity-relevant projection of two
// reports: per-cell values, error text, attempts and flags, plus the
// settled aggregate counters. Executed/Replayed are deliberately
// excluded (see AssembleReport).
func diffReports(t *testing.T, want, got *Report[segVal]) {
	t.Helper()
	if len(want.Results) != len(got.Results) {
		t.Fatalf("result count: want %d got %d", len(want.Results), len(got.Results))
	}
	for i := range want.Results {
		w, g := want.Results[i], got.Results[i]
		if w.Cell != g.Cell || w.Value != g.Value ||
			w.Quarantined != g.Quarantined || w.Interrupted != g.Interrupted ||
			w.Attempts != g.Attempts {
			t.Errorf("cell %s: want %+v got %+v", w.Cell.Key, w, g)
		}
		werr, gerr := "", ""
		if w.Err != nil {
			werr = w.Err.Error()
		}
		if g.Err != nil {
			gerr = g.Err.Error()
		}
		if werr != gerr {
			t.Errorf("cell %s error: want %q got %q", w.Cell.Key, werr, gerr)
		}
	}
	if want.Failed != got.Failed || want.Quarantined != got.Quarantined ||
		want.Retried != got.Retried || want.Interrupted != got.Interrupted {
		t.Errorf("counters: want %+v got failed=%d quarantined=%d retried=%d interrupted=%d",
			want, got.Failed, got.Quarantined, got.Retried, got.Interrupted)
	}
	if len(want.Health) != len(got.Health) {
		t.Fatalf("health: want %d entries got %d", len(want.Health), len(got.Health))
	}
	for i := range want.Health {
		if want.Health[i] != got.Health[i] {
			t.Errorf("health[%d]: want %+v got %+v", i, want.Health[i], got.Health[i])
		}
	}
}

func segMap(t *testing.T, segs []Segment) map[string]Segment {
	t.Helper()
	m := map[string]Segment{}
	for _, s := range segs {
		if _, dup := m[s.Key]; dup {
			t.Fatalf("duplicate segment %s", s.Key)
		}
		m[s.Key] = s
	}
	return m
}

// TestSegmentRoundTrip: export a finished report's segments, assemble
// them back, and require the settled projection to match.
func TestSegmentRoundTrip(t *testing.T) {
	spec := segSpec(24)
	rep := runSeg(t, spec, nil)
	segs, err := ExportSegments(rep)
	if err != nil {
		t.Fatalf("ExportSegments: %v", err)
	}
	if len(segs) != len(spec.Cells) {
		t.Fatalf("segments: want %d got %d", len(spec.Cells), len(segs))
	}
	got, err := AssembleReport[segVal](spec, segMap(t, segs), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	diffReports(t, rep, got)
}

// TestSegmentRoundTripBreaker: the assembled report's quarantine
// verdicts and health must match a local breaker run exactly, because
// both end with the same deterministic post-pass.
func TestSegmentRoundTripBreaker(t *testing.T) {
	spec := segSpec(30)
	br := &BreakerOptions{Threshold: 2, Cooldown: 2}
	local := runSeg(t, spec, br)

	// The distributed side executes every cell (no live skip): run the
	// same spec without a breaker, export, then assemble WITH it.
	flat := runSeg(t, spec, nil)
	segs, err := ExportSegments(flat)
	if err != nil {
		t.Fatalf("ExportSegments: %v", err)
	}
	got, err := AssembleReport[segVal](spec, segMap(t, segs), br)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	diffReports(t, local, got)
}

// TestAssembleMissingSegmentInterrupted: cells without a segment are
// pending, exactly like a drained local run.
func TestAssembleMissingSegmentInterrupted(t *testing.T) {
	spec := segSpec(6)
	rep := runSeg(t, spec, nil)
	segs, err := ExportSegments(rep)
	if err != nil {
		t.Fatalf("ExportSegments: %v", err)
	}
	m := segMap(t, segs)
	delete(m, "cell-03")
	got, err := AssembleReport[segVal](spec, m, nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	if got.Interrupted != 1 {
		t.Fatalf("Interrupted = %d, want 1", got.Interrupted)
	}
	r := got.Results[3]
	if !r.Interrupted || !errors.Is(r.Err, ErrInterrupted) {
		t.Fatalf("cell-03 = %+v, want interrupted", r)
	}
}

// TestSubSpec: the sub-spec preserves identity-relevant fields and
// rejects out-of-range indexes.
func TestSubSpec(t *testing.T) {
	spec := segSpec(8)
	sub, err := SubSpec(spec, []int{2, 5})
	if err != nil {
		t.Fatalf("SubSpec: %v", err)
	}
	if sub.Name != spec.Name || sub.Seed != spec.Seed || len(sub.Cells) != 2 {
		t.Fatalf("sub = %+v", sub)
	}
	if sub.Cells[0] != spec.Cells[2] || sub.Cells[1] != spec.Cells[5] {
		t.Fatalf("sub cells = %+v", sub.Cells)
	}
	// The split-seed stream for a cell is identical under the sub-spec.
	if sub.CellRand("cell-05", 0).Intn(1000) != spec.CellRand("cell-05", 0).Intn(1000) {
		t.Fatal("sub-spec cell RNG diverged from full spec")
	}
	if _, err := SubSpec(spec, []int{8}); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

// TestBreakerStateMachine: the exported wrapper walks the same
// threshold → cooldown → probation cycle the device breaker does.
func TestBreakerStateMachine(t *testing.T) {
	b := NewBreaker(BreakerOptions{Threshold: 3, Cooldown: 2})
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("refused before threshold (i=%d)", i)
		}
		b.Observe(false)
	}
	if !b.Open() {
		t.Fatal("breaker closed after threshold failures")
	}
	for i := 0; i < 2; i++ {
		if b.Allow() {
			t.Fatalf("allowed during cooldown (i=%d)", i)
		}
	}
	// Probation: allowed, and success closes the breaker.
	if !b.Allow() {
		t.Fatal("probation refused")
	}
	b.Observe(true)
	if b.Open() {
		t.Fatal("breaker still open after probation success")
	}
	// Probation failure re-opens immediately.
	for i := 0; i < 3; i++ {
		b.Allow()
		b.Observe(false)
	}
	b.Allow()
	b.Allow()
	if !b.Allow() {
		t.Fatal("probation refused after cooldown")
	}
	b.Observe(false)
	if !b.Open() {
		t.Fatal("probation failure did not re-open the breaker")
	}
}
