package litmus

import (
	"fmt"

	"repro/internal/mm"
)

// Builder constructs tests incrementally. Register indices are assigned
// in the order loads appear; write values must be unique per location.
type Builder struct {
	t      Test
	thread int
}

// NewBuilder returns a builder for a test with the given name and model.
func NewBuilder(name string, model mm.MCS) *Builder {
	return &Builder{t: Test{Name: name, Model: model}, thread: -1}
}

// Thread starts a new worker thread and returns the builder.
func (b *Builder) Thread() *Builder {
	b.t.Threads = append(b.t.Threads, Thread{})
	b.thread = len(b.t.Threads) - 1
	return b
}

// Observer starts a new observer thread.
func (b *Builder) Observer() *Builder {
	b.Thread()
	b.t.Threads[b.thread].Observer = true
	return b
}

func (b *Builder) add(in Instr) *Builder {
	if b.thread < 0 {
		panic("litmus: instruction before first Thread()")
	}
	th := &b.t.Threads[b.thread]
	th.Instrs = append(th.Instrs, in)
	if in.Op != OpFence && in.Loc >= b.t.NumLocs {
		b.t.NumLocs = in.Loc + 1
	}
	return b
}

// Load appends "reg = atomicLoad(&loc)" and returns the new register's
// index via the label-free Instr; use LoadL to label the event.
func (b *Builder) Load(loc int) *Builder { return b.LoadL(loc, "") }

// LoadL is Load with an event label.
func (b *Builder) LoadL(loc int, label string) *Builder {
	reg := b.t.NumRegs
	b.t.NumRegs++
	return b.add(Instr{Op: OpLoad, Loc: loc, Reg: reg, Label: label})
}

// Store appends "atomicStore(&loc, val)".
func (b *Builder) Store(loc int, val mm.Val) *Builder { return b.StoreL(loc, val, "") }

// StoreL is Store with an event label.
func (b *Builder) StoreL(loc int, val mm.Val, label string) *Builder {
	return b.add(Instr{Op: OpStore, Loc: loc, Val: val, Reg: -1, Label: label})
}

// Exchange appends "reg = atomicExchange(&loc, val)".
func (b *Builder) Exchange(loc int, val mm.Val) *Builder { return b.ExchangeL(loc, val, "") }

// ExchangeL is Exchange with an event label.
func (b *Builder) ExchangeL(loc int, val mm.Val, label string) *Builder {
	reg := b.t.NumRegs
	b.t.NumRegs++
	return b.add(Instr{Op: OpExchange, Loc: loc, Val: val, Reg: reg, Label: label})
}

// Fence appends a release/acquire fence.
func (b *Builder) Fence() *Builder { return b.FenceL("") }

// FenceL is Fence with an event label.
func (b *Builder) FenceL(label string) *Builder {
	return b.add(Instr{Op: OpFence, Reg: -1, Label: label})
}

// Target sets the target behavior.
func (b *Builder) Target(c Condition) *Builder {
	b.t.Target = c
	return b
}

// Mutant marks the test as a mutant of base produced by mutator.
func (b *Builder) Mutant(mutator, base string) *Builder {
	b.t.IsMutant = true
	b.t.Mutator = mutator
	b.t.Base = base
	return b
}

// Conformance tags the test with its mutator family.
func (b *Builder) Conformance(mutator string) *Builder {
	b.t.Mutator = mutator
	return b
}

// Build validates and returns the test, panicking on structural errors;
// catalog construction errors are programming bugs.
func (b *Builder) Build() *Test {
	t := b.t
	if err := t.Validate(); err != nil {
		panic(fmt.Sprintf("litmus: invalid catalog test: %v", err))
	}
	return &t
}

// regs is shorthand for a register condition map.
func regs(pairs ...mm.Val) map[int]mm.Val {
	m := make(map[int]mm.Val, len(pairs))
	for i, v := range pairs {
		m[i] = v
	}
	return m
}

// CoRR is the Coherence of Read-Read test of Fig. 1a: thread 1 stores
// x=1 while thread 0 reads x twice. Seeing the new value then the stale
// one (r0==1 && r1==0) violates SC-per-location.
func CoRR() *Test {
	return NewBuilder("CoRR", mm.SCPerLocation).
		Thread().LoadL(0, "a").LoadL(0, "b").
		Thread().StoreL(0, 1, "c").
		Target(Condition{Regs: regs(1, 0)}).
		Build()
}

// CoWW stores twice to x from one thread; a final value equal to the
// first store means the coherence order contradicted program order.
func CoWW() *Test {
	return NewBuilder("CoWW", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(0, 2, "b").
		Target(Condition{Final: map[int]mm.Val{0: 1}}).
		Build()
}

// CoWR stores x=1 then reads x in thread 0 while thread 1 stores x=2.
// Reading 2 while the final value is 1 is forbidden: the read saw a
// write that coherence places after the thread's own.
func CoWR() *Test {
	return NewBuilder("CoWR", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").LoadL(0, "b").
		Thread().StoreL(0, 2, "c").
		Target(Condition{Regs: regs(2), Final: map[int]mm.Val{0: 1}}).
		Build()
}

// CoRW reads x then stores x=1 in thread 0 while thread 1 stores x=2.
// Reading 2 while 2 is also the final value is forbidden: the external
// write would have to be both before the read and after the store.
func CoRW() *Test {
	return NewBuilder("CoRW", mm.SCPerLocation).
		Thread().LoadL(0, "a").StoreL(0, 1, "b").
		Thread().StoreL(0, 2, "c").
		Target(Condition{Regs: regs(2), Final: map[int]mm.Val{0: 2}}).
		Build()
}

// MP is message passing without synchronization: seeing the flag (y)
// but not the data (x) is weak yet allowed under SC-per-location.
func MP() *Test {
	return NewBuilder("MP", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(1, 1, "b").
		Thread().LoadL(1, "c").LoadL(0, "d").
		Target(Condition{Regs: regs(1, 0)}).
		Build()
}

// SB is store buffering: both threads store then load the other
// location; both loads returning 0 is the classic TSO relaxation.
func SB() *Test {
	return NewBuilder("SB", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").LoadL(1, "b").
		Thread().StoreL(1, 2, "c").LoadL(0, "d").
		Target(Condition{Regs: regs(0, 0)}).
		Build()
}

// LB is load buffering: both threads load then store; each load seeing
// the other thread's store requires loads to take effect after the
// later stores.
func LB() *Test {
	return NewBuilder("LB", mm.SCPerLocation).
		Thread().LoadL(0, "a").StoreL(1, 1, "b").
		Thread().LoadL(1, "c").StoreL(0, 2, "d").
		Target(Condition{Regs: regs(2, 1)}).
		Build()
}

// S is the "store" shape: thread 0 writes data then flag; thread 1 sees
// the flag and overwrites the data; the weak outcome has thread 0's
// data write win the coherence race anyway.
func S() *Test {
	return NewBuilder("S", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(1, 1, "b").
		Thread().LoadL(1, "c").StoreL(0, 2, "d").
		Target(Condition{Regs: regs(1), Final: map[int]mm.Val{0: 1}}).
		Build()
}

// R is the "read" shape: two writers to y race while thread 1 reads x
// stale; the weak outcome needs thread 0's y write ordered first.
func R() *Test {
	return NewBuilder("R", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(1, 1, "b").
		Thread().StoreL(1, 2, "c").LoadL(0, "d").
		Target(Condition{Regs: regs(0), Final: map[int]mm.Val{1: 2}}).
		Build()
}

// TwoPlusTwoW is 2+2W: both threads write both locations in opposite
// orders; the weak outcome has both first writes win.
func TwoPlusTwoW() *Test {
	return NewBuilder("2+2W", mm.SCPerLocation).
		Thread().StoreL(0, 1, "a").StoreL(1, 2, "b").
		Thread().StoreL(1, 3, "c").StoreL(0, 4, "d").
		Target(Condition{Final: map[int]mm.Val{0: 1, 1: 3}}).
		Build()
}

// MPRelAcq is Fig. 1b: message passing with release/acquire fences on
// both sides; the weak outcome is forbidden under
// rel-acq-SC-per-location.
func MPRelAcq() *Test {
	return NewBuilder("MP-relacq", mm.RelAcqSCPerLocation).
		Thread().StoreL(0, 1, "a").FenceL("b").StoreL(1, 1, "c").
		Thread().LoadL(1, "d").FenceL("e").LoadL(0, "f").
		Target(Condition{Regs: regs(1, 0)}).
		Build()
}

// LBRelAcq is load buffering with fences; forbidden under
// rel-acq-SC-per-location.
func LBRelAcq() *Test {
	return NewBuilder("LB-relacq", mm.RelAcqSCPerLocation).
		Thread().LoadL(0, "a").FenceL("b").StoreL(1, 1, "c").
		Thread().LoadL(1, "d").FenceL("e").StoreL(0, 2, "f").
		Target(Condition{Regs: regs(2, 1)}).
		Build()
}

// SRelAcq is the store shape with fences; forbidden under
// rel-acq-SC-per-location.
func SRelAcq() *Test {
	return NewBuilder("S-relacq", mm.RelAcqSCPerLocation).
		Thread().StoreL(0, 1, "a").FenceL("b").StoreL(1, 1, "c").
		Thread().LoadL(1, "d").FenceL("e").StoreL(0, 2, "f").
		Target(Condition{Regs: regs(1), Final: map[int]mm.Val{0: 1}}).
		Build()
}

// Catalog returns the hand-written classic tests used in examples and
// documentation. The systematically generated suite (20 conformance
// tests and 32 mutants) lives in package mutation.
func Catalog() []*Test {
	return []*Test{
		CoRR(), CoWW(), CoWR(), CoRW(),
		MP(), SB(), LB(), S(), R(), TwoPlusTwoW(),
		MPRelAcq(), LBRelAcq(), SRelAcq(),
	}
}
