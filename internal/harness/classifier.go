package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/litmus"
)

// Classifier memoizes outcome classification — the axiomatic-checker
// verdict plus the target match — keyed by (test, outcome key). One
// litmus test sees the same few distinct outcomes across thousands of
// instances, iterations and campaign cells, while classifying an
// outcome means reconstructing and checking a candidate execution; the
// classifier pays that cost once per distinct outcome per test for the
// whole process instead of once per Run call.
//
// Tests are keyed by pointer identity: the same *litmus.Test object
// always classifies an outcome the same way, and suite generation hands
// every runner the same test objects, so cache hits span all campaign
// cells that share a suite. The classifier is safe for concurrent use
// by every worker of a campaign.
type Classifier struct {
	tests  sync.Map // *litmus.Test -> *testClassCache
	hits   atomic.Int64
	misses atomic.Int64
}

// testClassCache holds one test's classified outcomes.
type testClassCache struct {
	mu sync.RWMutex
	m  map[string]outcomeClass
}

// sharedClassifier is the process-wide instance used by every Runner
// that does not set its own.
var sharedClassifier = &Classifier{}

// SharedClassifier returns the process-wide memoized classifier.
func SharedClassifier() *Classifier { return sharedClassifier }

// Classify returns the cached classification of the outcome under the
// test, computing and memoizing it on first sight.
func (c *Classifier) Classify(test *litmus.Test, o litmus.Outcome) (target, violation bool, err error) {
	return c.ClassifyKeyed(test, o, o.AppendKey(nil))
}

// ClassifyKeyed is Classify with the outcome's key bytes precomputed by
// the caller; key must equal o.AppendKey(nil). The cache-hit path is
// allocation-free — the compiler elides the []byte-to-string conversion
// for map lookups — so the hot loop pays for a key string only the
// first time a distinct outcome is seen.
func (c *Classifier) ClassifyKeyed(test *litmus.Test, o litmus.Outcome, key []byte) (target, violation bool, err error) {
	tc := c.cacheFor(test)
	tc.mu.RLock()
	cls, ok := tc.m[string(key)]
	tc.mu.RUnlock()
	if ok {
		c.hits.Add(1)
		return cls.target, cls.violation, nil
	}
	c.misses.Add(1)
	verdict, err := test.Classify(o)
	if err != nil {
		return false, false, fmt.Errorf("harness: classify %s: %w", test.Name, err)
	}
	cls = outcomeClass{
		target:    test.Target.Matches(o),
		violation: !verdict.Allowed,
	}
	tc.mu.Lock()
	tc.m[string(key)] = cls
	tc.mu.Unlock()
	return cls.target, cls.violation, nil
}

// cacheFor returns the test's outcome cache, creating it on first use.
func (c *Classifier) cacheFor(test *litmus.Test) *testClassCache {
	if v, ok := c.tests.Load(test); ok {
		return v.(*testClassCache)
	}
	v, _ := c.tests.LoadOrStore(test, &testClassCache{m: map[string]outcomeClass{}})
	return v.(*testClassCache)
}

// Stats reports cumulative cache hits and misses, for observability
// and tests.
func (c *Classifier) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}
