package tuning

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/gpu"
	"repro/internal/sched"
	"repro/internal/xrand"
)

// TestChaosCampaignDeterministicAcrossWorkers is the acceptance
// scenario for graceful degradation: a faulty fleet with the breaker
// enabled completes the campaign, drops cells into Dataset.Dropped,
// and serializes byte-identically at every worker count.
func TestChaosCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg, tests := campaignConfig()
	fm := gpu.UniformFaults(cfg.Seed, 0.3)
	cfg.Faults = &fm
	opts := func(workers int) RunOptions {
		return RunOptions{Workers: workers, Breaker: &sched.BreakerOptions{}}
	}
	serial, err := RunCampaign(cfg, tests, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Dropped) == 0 {
		t.Fatal("test vacuous: 30% fault rate dropped no cells")
	}
	if len(serial.Records) == 0 {
		t.Fatal("faulty fleet produced no surviving records")
	}
	quarantined := 0
	for _, d := range serial.Dropped {
		if d.Quarantined {
			quarantined++
		}
	}
	if quarantined == 0 {
		t.Fatal("test vacuous: breaker quarantined no cells")
	}
	for _, workers := range []int{4, 8} {
		parallel, err := RunCampaign(cfg, tests, opts(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		datasetsIdentical(t, serial, parallel, fmt.Sprintf("workers=1 vs workers=%d", workers))
		if len(parallel.Dropped) != len(serial.Dropped) {
			t.Fatalf("workers=%d: %d dropped vs %d", workers, len(parallel.Dropped), len(serial.Dropped))
		}
		for i := range serial.Dropped {
			if parallel.Dropped[i] != serial.Dropped[i] {
				t.Fatalf("workers=%d: dropped[%d] = %+v, want %+v",
					workers, i, parallel.Dropped[i], serial.Dropped[i])
			}
		}
	}
}

// TestChaosCampaignResumeMatchesCleanRun kills a faulty campaign
// mid-way and resumes it: replayed cells, freshly executed cells, and
// dropped cells must all settle into the same dataset as an
// uninterrupted chaotic run.
func TestChaosCampaignResumeMatchesCleanRun(t *testing.T) {
	cfg, tests := campaignConfig()
	fm := gpu.UniformFaults(cfg.Seed+7, 0.3)
	cfg.Faults = &fm
	breaker := &sched.BreakerOptions{}
	clean, err := RunCampaign(cfg, tests, RunOptions{Workers: 4, Breaker: breaker})
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Dropped) == 0 {
		t.Fatal("test vacuous: chaotic reference run dropped nothing")
	}

	ckpt := filepath.Join(t.TempDir(), "chaos.ckpt")
	spec, work, err := buildCampaign(&cfg, tests)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := sched.OpenCheckpoint(ckpt, spec, false)
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted run executes the first third of the campaign with
	// faults live — so the checkpoint holds only cells that survived
	// their own injected faults — then dies.
	killAfter := len(spec.Cells) / 3
	ran := 0
	_, err = sched.Run(spec, func(c sched.Cell, rng *xrand.Rand) (Record, error) {
		if ran++; ran > killAfter {
			return Record{}, fmt.Errorf("simulated kill")
		}
		return runCell(work[c.Key], cfg.Faults, rng)
	}, sched.Options[Record]{Workers: 1, Checkpoint: ck})
	if err == nil {
		t.Fatal("interrupted run succeeded")
	}
	ck.Close()

	resumed, err := RunCampaign(cfg, tests, RunOptions{
		Workers:        4,
		CheckpointPath: ckpt,
		Resume:         true,
		Breaker:        breaker,
	})
	if err != nil {
		t.Fatal(err)
	}
	datasetsIdentical(t, clean, resumed, "chaotic clean vs resumed")
	if len(resumed.Dropped) != len(clean.Dropped) {
		t.Fatalf("resume dropped %d cells, clean dropped %d", len(resumed.Dropped), len(clean.Dropped))
	}
}
