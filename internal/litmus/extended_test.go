package litmus

import (
	"testing"

	"repro/internal/mm"
)

func TestExtendedCatalogValidates(t *testing.T) {
	for _, tc := range ExtendedCatalog() {
		if err := tc.Validate(); err != nil {
			t.Errorf("%s: %v", tc.Name, err)
		}
	}
}

// TestExtendedWeakTargets: every extended shape's target is allowed
// under SC-per-location but forbidden under SC.
func TestExtendedWeakTargets(t *testing.T) {
	for _, tc := range ExtendedCatalog() {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if v := x.Check(mm.SCPerLocation); !v.Allowed {
			t.Errorf("%s: weak target forbidden under coherence", tc.Name)
		}
		if v := x.Check(mm.SC); v.Allowed {
			t.Errorf("%s: weak target allowed under SC", tc.Name)
		}
	}
}

// TestExtendedUnderTSO: WRC and ISA2 are forbidden under TSO (their
// cycles contain no write-to-read pair); IRIW and RWC contain one and
// are still forbidden on TSO because TSO is multi-copy atomic — our
// axiomatization keeps read-read order, so verify each explicitly.
func TestExtendedUnderTSO(t *testing.T) {
	want := map[string]bool{ // allowed under TSO?
		"WRC": false, "ISA2": false, "IRIW": false, "RWC": true,
	}
	for _, tc := range ExtendedCatalog() {
		x, err := tc.TargetExecution()
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		v := x.Check(mm.TSO)
		if v.Allowed != want[tc.Name] {
			t.Errorf("%s: TSO allowed=%v, want %v", tc.Name, v.Allowed, want[tc.Name])
		}
	}
}

func TestExtendedThreadCounts(t *testing.T) {
	counts := map[string]int{"WRC": 3, "ISA2": 3, "IRIW": 4, "RWC": 3}
	for _, tc := range ExtendedCatalog() {
		if len(tc.Threads) != counts[tc.Name] {
			t.Errorf("%s: %d threads, want %d", tc.Name, len(tc.Threads), counts[tc.Name])
		}
	}
	if ISA2().NumLocs != 3 {
		t.Error("ISA2 should use three locations")
	}
}

func TestExtendedFormatsRoundTrip(t *testing.T) {
	for _, tc := range ExtendedCatalog() {
		back, err := ParseString(Format(tc))
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		if back.Target.String() != tc.Target.String() || back.Instructions() != tc.Instructions() {
			t.Errorf("%s: round trip changed the test", tc.Name)
		}
	}
}
