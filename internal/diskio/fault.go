package diskio

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync"
	"time"

	"repro/internal/xrand"
)

// ErrCrashed is returned by every operation of a FaultFS after its
// configured crash point: the simulated machine is dead and the
// filesystem frozen in whatever state the preceding operations left on
// the inner filesystem. It is deliberately not a storage error
// (IsStorageErr is false) — a crashed process cannot degrade
// gracefully, it can only be restarted against the surviving bytes.
var ErrCrashed = errors.New("diskio: simulated crash: filesystem frozen")

// FaultFS wraps an inner FS with a deterministic fault stream. Faults
// are keyed by the ordinal of each mutating operation — opening for
// write, Write, Sync, Truncate, Rename, Remove, MkdirAll, Chtimes,
// SyncDir — counted from 1 in execution order:
//
//   - CrashAfter(n) freezes the filesystem at operation n. The crashing
//     operation is applied partially — a Write is torn at a byte offset
//     drawn from a split-seed stream, a metadata operation is dropped —
//     and every later operation (reads included) returns ErrCrashed.
//   - FailOp(n, err) makes operation n fail with err (torn like a
//     crash, but the filesystem stays alive).
//   - FailFrom(n, err) makes every operation from n on fail with err —
//     persistent ENOSPC or EIO, the graceful-degradation scenario.
//
// Tear offsets derive purely from (seed, op ordinal), so a given
// configuration replays byte-identically. Ops reports the count so a
// fault-free profiling run can enumerate every crash boundary.
type FaultFS struct {
	inner FS
	seed  uint64

	mu         sync.Mutex
	ops        int
	crashAfter int
	crashed    bool
	failOps    map[int]error
	failFrom   int
	failErr    error
}

// NewFaultFS wraps inner with an initially fault-free injecting
// filesystem; seed drives the torn-write offset stream.
func NewFaultFS(inner FS, seed uint64) *FaultFS {
	return &FaultFS{inner: inner, seed: seed, failOps: map[int]error{}}
}

// CrashAfter arms the crash at mutating operation n (1-based); 0
// disarms it.
func (f *FaultFS) CrashAfter(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashAfter = n
}

// FailOp makes mutating operation n (1-based) fail with err.
func (f *FaultFS) FailOp(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failOps[n] = err
}

// FailFrom makes every mutating operation from n (1-based) on fail
// with err — a persistently full or failing disk.
func (f *FaultFS) FailFrom(n int, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failFrom, f.failErr = n, err
}

// Ops returns how many mutating operations have been attempted.
func (f *FaultFS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// Crashed reports whether the crash point has been reached.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// verdict is one mutating operation's fate.
type verdict struct {
	err  error // nil: proceed
	tear bool  // writes apply a torn prefix before failing
	op   int   // ordinal, for the tear-offset derivation
}

// gate assigns the next mutating operation its fate.
func (f *FaultFS) gate() verdict {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return verdict{err: ErrCrashed}
	}
	f.ops++
	op := f.ops
	if f.crashAfter > 0 && op >= f.crashAfter {
		f.crashed = true
		return verdict{err: ErrCrashed, tear: true, op: op}
	}
	if err, ok := f.failOps[op]; ok {
		return verdict{err: err, tear: true, op: op}
	}
	if f.failErr != nil && op >= f.failFrom {
		return verdict{err: f.failErr, tear: true, op: op}
	}
	return verdict{op: op}
}

// frozen reports the post-crash state; non-mutating operations check it
// without consuming an ordinal.
func (f *FaultFS) frozen() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// tearOffset picks where operation op's write tears: a pure function
// of (seed, op), uniform over [0, n].
func (f *FaultFS) tearOffset(op, n int) int {
	return xrand.NewFromPath(f.seed, "diskio-tear", fmt.Sprintf("op-%d", op)).Intn(n + 1)
}

// pathErr wraps an injected error with syscall-style context so the
// chain still matches errors.Is(err, syscall.ENOSPC) etc.
func pathErr(op, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: err}
}

// writeFlags are the os.OpenFile flags that make an open a mutating
// operation.
const writeFlags = os.O_WRONLY | os.O_RDWR | os.O_APPEND | os.O_CREATE | os.O_TRUNC

// OpenFile opens through the inner FS; opens for writing are gated by
// the fault stream, and a crash point landing on one leaves the file
// uncreated.
func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&writeFlags != 0 {
		if v := f.gate(); v.err != nil {
			return nil, pathErr("open", name, v.err)
		}
	} else if f.frozen() {
		return nil, pathErr("open", name, ErrCrashed)
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

// Rename is gated; a crash or failure drops the rename entirely
// (rename is atomic — it either happened or it did not).
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if v := f.gate(); v.err != nil {
		return pathErr("rename", newpath, v.err)
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove is gated.
func (f *FaultFS) Remove(name string) error {
	if v := f.gate(); v.err != nil {
		return pathErr("remove", name, v.err)
	}
	return f.inner.Remove(name)
}

// MkdirAll is gated; a crash or failure drops the whole creation
// (directory creation is treated as atomic at this granularity).
func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if v := f.gate(); v.err != nil {
		return pathErr("mkdir", path, v.err)
	}
	return f.inner.MkdirAll(path, perm)
}

// Chtimes is gated: it mutates metadata, so a full disk or a crash
// point can land on it.
func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	if v := f.gate(); v.err != nil {
		return pathErr("chtimes", name, v.err)
	}
	return f.inner.Chtimes(name, atime, mtime)
}

// ReadDir passes through unless the filesystem has crashed; like Read,
// it does not consume a fault ordinal.
func (f *FaultFS) ReadDir(name string) ([]os.DirEntry, error) {
	if f.frozen() {
		return nil, pathErr("readdir", name, ErrCrashed)
	}
	return f.inner.ReadDir(name)
}

// Stat passes through unless the filesystem has crashed.
func (f *FaultFS) Stat(name string) (os.FileInfo, error) {
	if f.frozen() {
		return nil, pathErr("stat", name, ErrCrashed)
	}
	return f.inner.Stat(name)
}

// SyncDir is gated; a dropped directory sync is the classic
// rename-not-durable crash window.
func (f *FaultFS) SyncDir(dir string) error {
	if v := f.gate(); v.err != nil {
		return pathErr("syncdir", dir, v.err)
	}
	return f.inner.SyncDir(dir)
}

// faultFile gates a File's operations through its filesystem's fault
// stream.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Name() string { return ff.inner.Name() }

// Read passes through unless the filesystem has crashed.
func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.frozen() {
		return 0, pathErr("read", ff.inner.Name(), ErrCrashed)
	}
	return ff.inner.Read(p)
}

// Seek passes through unless the filesystem has crashed.
func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.fs.frozen() {
		return 0, pathErr("seek", ff.inner.Name(), ErrCrashed)
	}
	return ff.inner.Seek(offset, whence)
}

// Write is gated; a crash or injected failure tears the write at a
// split-seed byte offset — the prefix reaches the inner file, the rest
// never existed.
func (ff *faultFile) Write(p []byte) (int, error) {
	v := ff.fs.gate()
	if v.err == nil {
		return ff.inner.Write(p)
	}
	n := 0
	if v.tear && len(p) > 0 {
		if k := ff.fs.tearOffset(v.op, len(p)); k > 0 {
			n, _ = ff.inner.Write(p[:k])
		}
	}
	return n, pathErr("write", ff.inner.Name(), v.err)
}

// Sync is gated; a dropped fsync leaves previously-written bytes at
// the mercy of the (simulated) page cache.
func (ff *faultFile) Sync() error {
	if v := ff.fs.gate(); v.err != nil {
		return pathErr("sync", ff.inner.Name(), v.err)
	}
	return ff.inner.Sync()
}

// Truncate is gated.
func (ff *faultFile) Truncate(size int64) error {
	if v := ff.fs.gate(); v.err != nil {
		return pathErr("truncate", ff.inner.Name(), v.err)
	}
	return ff.inner.Truncate(size)
}

// Close always releases the inner file (the test process must not leak
// descriptors across hundreds of simulated crashes) but reports
// ErrCrashed once the filesystem is frozen.
func (ff *faultFile) Close() error {
	err := ff.inner.Close()
	if ff.fs.frozen() {
		return pathErr("close", ff.inner.Name(), ErrCrashed)
	}
	return err
}
