package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	out, err := readAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return out, runErr
}

func readAll(f *os.File) (string, error) {
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := f.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			if err.Error() == "EOF" {
				return sb.String(), nil
			}
			return sb.String(), nil
		}
	}
}

func TestNoArgs(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("missing subcommand accepted")
	}
}

func TestUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

func TestHelp(t *testing.T) {
	if err := run([]string{"help"}); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteDefault(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"suite"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"reversing po-loc", "Combined", "MP-relacq-nofence"} {
		if !strings.Contains(out, want) {
			t.Errorf("suite output missing %q", want)
		}
	}
}

func TestSuiteShow(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"suite", "-show", "CoRR,MP-relacq"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "atomicLoad(&x)") || !strings.Contains(out, "fence(release/acquire)") {
		t.Errorf("show output wrong:\n%s", out)
	}
	if err := run([]string{"suite", "-show", "bogus"}); err == nil {
		t.Error("bogus test name accepted")
	}
}

func TestSuiteExplainTemplatesAssignmentShader(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"suite", "-explain"}) })
	if err != nil || !strings.Contains(out, "hb cycle") {
		t.Errorf("explain failed: %v\n%s", err, out)
	}
	out, err = capture(t, func() error { return run([]string{"suite", "-templates"}) })
	if err != nil || !strings.Contains(out, "Mutator 1") {
		t.Errorf("templates failed: %v", err)
	}
	out, err = capture(t, func() error { return run([]string{"suite", "-assignment"}) })
	if err != nil || !strings.Contains(out, "PTE assignment") {
		t.Errorf("assignment failed: %v", err)
	}
	out, err = capture(t, func() error { return run([]string{"suite", "-shader", "MP"}) })
	if err != nil || !strings.Contains(out, "@compute") {
		t.Errorf("shader failed: %v\n%s", err, out)
	}
	if err := run([]string{"suite", "-shader", "bogus"}); err == nil {
		t.Error("bogus shader name accepted")
	}
}

func TestDevices(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"devices"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "GeForce RTX 2080") {
		t.Errorf("devices output wrong:\n%s", out)
	}
}

func TestRunCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-test", "MP", "-device", "AMD", "-iters", "3",
			"-workgroups", "4", "-wgsize", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MP on AMD", "target", "outcomes:"} {
		if !strings.Contains(out, want) {
			t.Errorf("run output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCommandErrors(t *testing.T) {
	if err := run([]string{"run", "-test", "bogus"}); err == nil {
		t.Error("bogus test accepted")
	}
	if err := run([]string{"run", "-test", "MP", "-device", "bogus"}); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run([]string{"run", "-test", "MP", "-env", "bogus"}); err == nil {
		t.Error("bogus env accepted")
	}
}

func TestConformanceCommandFindsBug(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"conformance", "-device", "AMD", "-fence-bug", "-iters", "6"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MP-relacq") || !strings.Contains(out, "VIOLATED") {
		t.Errorf("conformance did not catch the fence bug:\n%s", out)
	}
	if !strings.Contains(out, "FAILED") {
		t.Errorf("missing failure summary:\n%s", out)
	}
}

func TestCampaignConformanceCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD,Intel",
			"-iters", "4", "-parallel", "4", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"AMD", "Intel", "fleet conforms"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output missing %q:\n%s", want, out)
		}
	}
	// A fleet-wide injected driver bug is caught and explained.
	out, err = capture(t, func() error {
		return run([]string{"campaign", "-kind", "conformance", "-devices", "AMD",
			"-iters", "6", "-parallel", "2", "-fence-bug", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MP-relacq") || !strings.Contains(out, "violation(s) across the fleet") {
		t.Errorf("fleet campaign missed the fence bug:\n%s", out)
	}
}

func TestCampaignEvaluateCommand(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "eval.ckpt")
	args := []string{"campaign", "-kind", "evaluate", "-devices", "AMD",
		"-envs", "pte,site", "-iters", "2", "-parallel", "4",
		"-checkpoint", ckpt, "-quiet"}
	out, err := capture(t, func() error { return run(args) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mutation score") || !strings.Contains(out, "killed across 2 environments") {
		t.Errorf("evaluate output wrong:\n%s", out)
	}
	// Resume replays the finished checkpoint and reproduces the result.
	resumed, err := capture(t, func() error { return run(append(args, "-resume")) })
	if err != nil {
		t.Fatal(err)
	}
	if resumed != out {
		t.Errorf("resumed campaign differs:\n%s\nvs\n%s", resumed, out)
	}
}

func TestCampaignCommandErrors(t *testing.T) {
	if err := run([]string{"campaign", "-kind", "bogus"}); err == nil {
		t.Error("bogus kind accepted")
	}
	if err := run([]string{"campaign", "-devices", "bogus", "-quiet"}); err == nil {
		t.Error("bogus device accepted")
	}
	if err := run([]string{"campaign", "-envs", "bogus", "-quiet"}); err == nil {
		t.Error("bogus env accepted")
	}
}

func TestTunePipelineParallelMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	base := []string{"tune", "-envs", "2", "-site-iters", "4", "-pte-iters", "2",
		"-devices", "AMD,Intel", "-quiet"}
	serialPath := filepath.Join(dir, "serial.json")
	parallelPath := filepath.Join(dir, "parallel.json")
	if _, err := capture(t, func() error {
		return run(append(base, "-out", serialPath, "-parallel", "1"))
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := capture(t, func() error {
		return run(append(base, "-out", parallelPath, "-parallel", "8"))
	}); err != nil {
		t.Fatal(err)
	}
	serial, err := os.ReadFile(serialPath)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := os.ReadFile(parallelPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(serial) != string(parallel) {
		t.Fatal("tune -parallel 8 dataset is not byte-identical to -parallel 1")
	}
}

func TestTuneResume(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tuning.json")
	base := []string{"tune", "-out", path, "-envs", "1", "-site-iters", "2",
		"-pte-iters", "1", "-devices", "AMD", "-quiet"}
	// First run with -resume creates <out>.ckpt by default.
	if _, err := capture(t, func() error { return run(append(base, "-resume")) }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".ckpt"); err != nil {
		t.Fatalf("default checkpoint not created: %v", err)
	}
	first, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Second resumed run replays everything and writes the same dataset.
	if _, err := capture(t, func() error { return run(append(base, "-resume")) }); err != nil {
		t.Fatal(err)
	}
	second, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Fatal("resumed tune dataset differs")
	}
}

func TestTuneAnalyzeCTSPipeline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tuning.json")
	out, err := capture(t, func() error {
		return run([]string{"tune", "-out", path, "-envs", "2",
			"-site-iters", "4", "-pte-iters", "2",
			"-devices", "AMD,Intel", "-quiet"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote") || !strings.Contains(out, "all mutators") {
		t.Errorf("tune output wrong:\n%s", out)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}

	out, err = capture(t, func() error {
		return run([]string{"analyze", "-action", "mutation-score", "-stats", path})
	})
	if err != nil || !strings.Contains(out, "SITE-Baseline") {
		t.Errorf("mutation-score failed: %v", err)
	}

	out, err = capture(t, func() error {
		return run([]string{"analyze", "-action", "merge", "-stats", path,
			"-rep", "95", "-budget", "0.25"})
	})
	if err != nil || !strings.Contains(out, "mutation score") {
		t.Errorf("merge failed: %v\n%s", err, out)
	}

	out, err = capture(t, func() error {
		return run([]string{"analyze", "-action", "merge-sweep", "-stats", path})
	})
	if err != nil || !strings.Contains(out, "99.999%") {
		t.Errorf("merge-sweep failed: %v", err)
	}

	out, err = capture(t, func() error {
		return run([]string{"cts", "-stats", path, "-rep", "95", "-budget", "0.125"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"CTS plan", "total reproducibility", "mutation score"} {
		if !strings.Contains(out, want) {
			t.Errorf("cts output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeCorrelation(t *testing.T) {
	if testing.Short() {
		t.Skip("correlation analysis is slow")
	}
	out, err := capture(t, func() error {
		return run([]string{"analyze", "-action", "correlation", "-envs", "6", "-iters", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Intel/CoRR", "AMD/MP-relacq", "NVIDIA/MP-CO", "PCC"} {
		if !strings.Contains(out, want) {
			t.Errorf("correlation output missing %q:\n%s", want, out)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if err := run([]string{"analyze", "-action", "bogus"}); err == nil {
		t.Error("bogus action accepted")
	}
	if err := run([]string{"analyze", "-action", "mutation-score", "-stats", "/no/such/file.json"}); err == nil {
		t.Error("missing dataset accepted")
	}
	if err := run([]string{"cts", "-stats", "/no/such/file.json"}); err == nil {
		t.Error("missing dataset accepted by cts")
	}
}

func TestSuiteExportAndRunFile(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error { return run([]string{"suite", "-export", dir}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote 52 .litmus files") {
		t.Fatalf("export output: %s", out)
	}
	// Run one exported file end to end.
	out, err = capture(t, func() error {
		return run([]string{"run", "-file", filepath.Join(dir, "MP.litmus"),
			"-device", "AMD", "-iters", "3", "-workgroups", "4", "-wgsize", "8"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MP on AMD") {
		t.Fatalf("run -file output: %s", out)
	}
	if err := run([]string{"run", "-file", "/no/such/file.litmus"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestOptimizeCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"optimize", "-test", "MP", "-device", "AMD",
			"-explore", "3", "-refine", "2", "-iters", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimized environment") || !strings.Contains(out, "kills/s") {
		t.Fatalf("optimize output: %s", out)
	}
	if err := run([]string{"optimize", "-test", "bogus"}); err == nil {
		t.Error("bogus test accepted")
	}
}

func TestTraceCommand(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"trace", "-test", "MP-relacq", "-device", "AMD", "-limit", "10"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"traced MP-relacq", "issue", "complete", "trace verification passed"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	if err := run([]string{"trace", "-test", "bogus"}); err == nil {
		t.Error("bogus test accepted")
	}
}

func TestSuiteDotCommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"suite", "-dot", "MP-relacq"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "po;sw;po") {
		t.Errorf("dot output wrong:\n%s", out)
	}
	if err := run([]string{"suite", "-dot", "bogus"}); err == nil {
		t.Error("bogus dot name accepted")
	}
}

// TestFlagValidationFailsFast: flag mistakes — unknown kind, device or
// environment preset, out-of-range fault parameters, unwritable output
// or profile paths — must be rejected with exit 1 before any campaign
// work starts. Each case carries an enormous iteration count, so a
// validation that only triggers after the campaign begins would blow
// the elapsed bound; and no artifact may appear at -out.
func TestFlagValidationFailsFast(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "report.json")
	noDir := filepath.Join(dir, "no-such-dir", "x")
	cases := [][]string{
		{"campaign", "-kind", "bogus", "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-devices", "NoSuchGPU", "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-envs", "warp9", "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-faults", "-fault-rate", "1.5", "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-cpuprofile", noDir, "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-memprofile", noDir, "-iters", "1000000", "-out", out, "-quiet"},
		{"campaign", "-out", noDir, "-iters", "1000000", "-quiet"},
		{"tune", "-devices", "NoSuchGPU", "-site-iters", "1000000", "-out", out, "-quiet"},
		{"tune", "-envs", "0", "-out", out, "-quiet"},
		{"tune", "-memprofile", noDir, "-site-iters", "1000000", "-out", out, "-quiet"},
		{"tune", "-out", noDir, "-site-iters", "1000000", "-quiet"},
	}
	for _, args := range cases {
		start := time.Now()
		err := run(args)
		if err == nil {
			t.Errorf("%v: accepted", args)
			continue
		}
		if code := exitCode(err); code != 1 {
			t.Errorf("%v: exit %d (%v), want 1", args, code, err)
		}
		if el := time.Since(start); el > 5*time.Second {
			t.Errorf("%v: rejected only after %v — validation ran after campaign work started", args, el)
		}
		if _, statErr := os.Stat(out); !os.IsNotExist(statErr) {
			t.Errorf("%v: artifact written despite fatal flag error", args)
		}
	}
}

// TestServeVerbDrain: the serve verb boots the campaign service and a
// context cancellation — the CLI signal path — drains gracefully and
// exits 130, like the campaign and tune verbs.
func TestServeVerbDrain(t *testing.T) {
	state := filepath.Join(t.TempDir(), "state")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		errc <- dispatch(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-state", state, "-quiet"})
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(state, "jobs")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never created its state directory")
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if exitCode(err) != 130 {
			t.Fatalf("serve exit = %d (%v), want 130", exitCode(err), err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain after cancellation")
	}
}

// TestServeVerbErrors: unusable flags fail fast with exit 1.
func TestServeVerbErrors(t *testing.T) {
	dir := t.TempDir()
	occupied := filepath.Join(dir, "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"serve", "-addr", "127.0.0.1:0", "-state", occupied, "-quiet"},
		{"serve", "-addr", "127.0.0.1:notaport", "-state", filepath.Join(dir, "s"), "-quiet"},
	} {
		err := run(args)
		if err == nil {
			t.Errorf("%v: accepted", args)
			continue
		}
		if code := exitCode(err); code != 1 {
			t.Errorf("%v: exit %d (%v), want 1", args, code, err)
		}
	}
}

// TestVersionVerb: the version verb prints the resolved build identity
// — the same string /healthz and mcmutants_build_info expose — and
// never fails, stamped or not.
func TestVersionVerb(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"version"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "mcmutants ") || !strings.Contains(out, "go1.") {
		t.Errorf("version output %q lacks name or toolchain", out)
	}
}
