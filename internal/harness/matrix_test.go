package harness

import (
	"testing"

	"repro/internal/gpu"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

func TestKillMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	suite := mutation.MustGenerate()
	envs := []struct {
		name  string
		p     Params
		iters int
	}{
		{"SITE-base", SITEBaseline(), 60},
		{"PTE-base", PTEBaseline(8, 16), 6},
		{"PTE-stress", stressedPTE(), 6},
	}
	for _, env := range envs {
		for _, devName := range []string{"NVIDIA", "AMD", "Intel", "M1"} {
			d := device(t, devName, gpu.Bugs{})
			r, err := NewRunner(d, env.p)
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(101)
			killed := 0
			names := ""
			for _, mt := range suite.Mutants {
				res, err := r.Run(mt, env.iters, rng)
				if err != nil {
					t.Fatal(err)
				}
				if res.TargetCount > 0 {
					killed++
					names += " " + mt.Name
				}
			}
			t.Logf("%-11s %-7s %2d/32:%s", env.name, devName, killed, names)
		}
	}
}
