package sched

// ResultCache is the seam to the cross-campaign result cache
// (internal/resultcache implements it). The scheduler consults it
// before executing a cell and publishes after a cell validates;
// everything else — verification, quarantine, atomic publication,
// eviction — lives behind this interface.
//
// The contract is that implementations never fail the campaign: Get
// answers miss for anything it cannot verifiably serve, Put is
// best-effort, and a storage failure surfaces only through Degraded —
// reported, never fatal. Keys are the cell digests produced by
// Spec.CellDigest; payloads are the cell values' JSON encodings.
type ResultCache interface {
	// Get returns the cached payload for key. hit reports a verified
	// entry; corrupt reports that an entry existed but failed
	// verification and was discarded (the caller recomputes and counts
	// it). hit and corrupt are never both true.
	Get(key string) (payload []byte, hit bool, corrupt bool)
	// Put publishes payload (a JSON document) under key, best-effort.
	Put(key string, payload []byte)
	// Degraded returns the sticky storage error that switched the
	// cache to pass-through, or nil while it is healthy.
	Degraded() error
}
