package litmus

import (
	"fmt"
	"strings"

	"repro/internal/mm"
)

// This file provides operational oracles: exhaustive state-space
// enumeration of a test's reachable outcomes under the textbook
// operational definitions of sequential consistency (interleaving of
// atomic steps) and x86-TSO (interleaving plus per-thread FIFO store
// buffers with forwarding). They exist to cross-validate the axiomatic
// checker: for every test, the operationally reachable set must equal
// the axiomatically allowed subset of the candidate-outcome universe.
// That equivalence is asserted across the whole generated suite in the
// oracle tests.

// oracleState is one interpreter configuration.
type oracleState struct {
	pcs  []int
	mem  []mm.Val
	regs []mm.Val
	// buffers[t] is thread t's FIFO store buffer (TSO only; nil slices
	// under SC).
	buffers [][]bufEntry
}

type bufEntry struct {
	loc int
	val mm.Val
}

// key serializes the state for memoization.
func (s *oracleState) key() string {
	var b strings.Builder
	for _, pc := range s.pcs {
		fmt.Fprintf(&b, "%d,", pc)
	}
	b.WriteByte('|')
	for _, v := range s.mem {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, v := range s.regs {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, buf := range s.buffers {
		for _, e := range buf {
			fmt.Fprintf(&b, "%d:%d,", e.loc, e.val)
		}
		b.WriteByte(';')
	}
	return b.String()
}

func (s *oracleState) clone() *oracleState {
	c := &oracleState{
		pcs:  append([]int(nil), s.pcs...),
		mem:  append([]mm.Val(nil), s.mem...),
		regs: append([]mm.Val(nil), s.regs...),
	}
	if s.buffers != nil {
		c.buffers = make([][]bufEntry, len(s.buffers))
		for i, buf := range s.buffers {
			c.buffers[i] = append([]bufEntry(nil), buf...)
		}
	}
	return c
}

// SCOutcomes enumerates the outcomes reachable under sequential
// consistency: threads interleave, every instruction is one atomic
// step, fences are no-ops. Keys are Outcome.Key values.
func (t *Test) SCOutcomes() map[string]bool {
	return t.operationalOutcomes(false)
}

// TSOOutcomes enumerates the outcomes reachable under operational
// x86-TSO: each thread owns a FIFO store buffer; stores enqueue, a
// buffered entry may drain to memory at any point, loads forward from
// the newest matching own-buffer entry, and fences, barriers and RMWs
// require an empty own buffer.
func (t *Test) TSOOutcomes() map[string]bool {
	return t.operationalOutcomes(true)
}

func (t *Test) operationalOutcomes(tso bool) map[string]bool {
	init := &oracleState{
		pcs:  make([]int, len(t.Threads)),
		mem:  make([]mm.Val, t.NumLocs),
		regs: make([]mm.Val, t.NumRegs),
	}
	if tso {
		init.buffers = make([][]bufEntry, len(t.Threads))
	}
	outcomes := map[string]bool{}
	seen := map[string]bool{}
	var walk func(s *oracleState)
	walk = func(s *oracleState) {
		k := s.key()
		if seen[k] {
			return
		}
		seen[k] = true
		terminal := true
		for ti := range t.Threads {
			if s.pcs[ti] < len(t.Threads[ti].Instrs) {
				terminal = false
				if next := t.stepThread(s, ti, tso); next != nil {
					walk(next)
				}
			}
			if tso && len(s.buffers[ti]) > 0 {
				terminal = false
				walk(drainOldest(s, ti))
			}
		}
		if terminal {
			o := Outcome{
				Regs:  append([]mm.Val(nil), s.regs...),
				Final: append([]mm.Val(nil), s.mem...),
			}
			outcomes[o.Key()] = true
		}
	}
	walk(init)
	return outcomes
}

// stepThread executes thread ti's next instruction on a copy of s, or
// returns nil when the instruction is not enabled (a fence or RMW with
// a nonempty buffer).
func (t *Test) stepThread(s *oracleState, ti int, tso bool) *oracleState {
	in := t.Threads[ti].Instrs[s.pcs[ti]]
	switch in.Op {
	case OpFence:
		if tso && len(s.buffers[ti]) > 0 {
			return nil // fences drain the buffer first
		}
		n := s.clone()
		n.pcs[ti]++
		return n
	case OpLoad:
		n := s.clone()
		v := n.mem[in.Loc]
		if tso {
			// Forward from the newest own-buffer entry, if any.
			for i := len(n.buffers[ti]) - 1; i >= 0; i-- {
				if n.buffers[ti][i].loc == in.Loc {
					v = n.buffers[ti][i].val
					break
				}
			}
		}
		n.regs[in.Reg] = v
		n.pcs[ti]++
		return n
	case OpStore:
		n := s.clone()
		if tso {
			n.buffers[ti] = append(n.buffers[ti], bufEntry{loc: in.Loc, val: in.Val})
		} else {
			n.mem[in.Loc] = in.Val
		}
		n.pcs[ti]++
		return n
	case OpExchange:
		if tso && len(s.buffers[ti]) > 0 {
			return nil // locked operations drain the buffer first
		}
		n := s.clone()
		n.regs[in.Reg] = n.mem[in.Loc]
		n.mem[in.Loc] = in.Val
		n.pcs[ti]++
		return n
	default:
		n := s.clone()
		n.pcs[ti]++
		return n
	}
}

// drainOldest commits thread ti's oldest buffered store to memory on a
// copy of s.
func drainOldest(s *oracleState, ti int) *oracleState {
	n := s.clone()
	e := n.buffers[ti][0]
	n.buffers[ti] = append([]bufEntry(nil), n.buffers[ti][1:]...)
	n.mem[e.loc] = e.val
	return n
}
