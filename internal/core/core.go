// Package core is the high-level MC Mutants API: it ties the generated
// test suite, the simulated device fleet, the testing environments and
// the confidence machinery together into the three workflows the paper
// demonstrates —
//
//   - evaluating a testing environment by mutation score and mutant
//     death rate (Sec. 3),
//   - checking a platform's conformance and explaining any violation
//     as a happens-before cycle (Sec. 5.4's bug discoveries),
//   - curating a conformance test suite with per-test environments and
//     a reproducibility-backed time budget (Sec. 4.2, 5.3).
//
// Commands and examples build on this package rather than wiring the
// internal pieces directly.
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/confidence"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/sched"
	"repro/internal/tuning"
	"repro/internal/wgsl"
)

// Study bundles the generated suite with the device fleet.
type Study struct {
	// Suite is the generated 20-conformance/32-mutant test suite.
	Suite *mutation.Suite
}

// NewStudy generates the test suite.
func NewStudy() (*Study, error) {
	s, err := mutation.Generate()
	if err != nil {
		return nil, err
	}
	return &Study{Suite: s}, nil
}

// Platform describes a device under test: a profile, injected device
// defects, and the driver build of its shading toolchain.
type Platform struct {
	// Device is the profile short name ("NVIDIA", "AMD", "Intel",
	// "M1", "Kepler").
	Device string
	// Bugs injects device-level defects.
	Bugs gpu.Bugs
	// Driver selects the toolchain build.
	Driver wgsl.DriverVersion
	// Faults injects deterministic device-stack faults (lost launches,
	// hangs, result corruption, device loss) and configures the
	// executor watchdog. The zero value injects nothing and leaves every
	// run bit-identical to a fault-free platform.
	Faults gpu.FaultModel
}

// runner builds a harness runner for the platform and environment.
func (p Platform) runner(env harness.Params) (*harness.Runner, error) {
	prof, ok := gpu.ProfileByName(p.Device)
	if !ok {
		return nil, fmt.Errorf("core: unknown device %q", p.Device)
	}
	dev, err := gpu.NewDevice(prof, p.Bugs)
	if err != nil {
		return nil, err
	}
	if err := dev.SetFaults(p.Faults); err != nil {
		return nil, err
	}
	r, err := harness.NewRunner(dev, env)
	if err != nil {
		return nil, err
	}
	r.Lower = wgsl.NewToolchain(prof, p.Driver).LowerFunc()
	return r, nil
}

// EnvScore is a testing environment's evaluation on one platform.
type EnvScore struct {
	// Killed and Total give the mutation score over the suite's
	// mutants.
	Killed, Total int
	// AvgDeathRate is the mean kill rate over killed-or-not mutants
	// (kills per simulated second).
	AvgDeathRate float64
	// PerMutant holds the individual results in suite order. Entries
	// whose every cell failed carry zero counts (never nil).
	PerMutant []*harness.Result
	// Failures records campaign cells that produced no usable data —
	// permanent device failures and quarantined cells. Empty on a
	// healthy fleet; never silently dropped on a faulty one.
	Failures []CellFailure
	// Health summarizes per-device fleet health when the campaign ran
	// with a circuit breaker.
	Health []sched.DeviceHealth
	// Interrupted is true when the campaign was cancelled before every
	// cell ran: the score covers only the completed cells, and a resumed
	// run (same seed, same checkpoint) will finish the rest.
	Interrupted bool
	// StorageDegraded is true when the campaign's checkpoint hit a
	// persistent storage failure (ENOSPC, EIO) and finished in-memory:
	// the score is complete and correct, but cells completed after the
	// failure are not durably checkpointed. StorageErr carries the
	// cause.
	StorageDegraded bool
	StorageErr      string
}

// Score returns the mutation score in [0, 1].
func (s *EnvScore) Score() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Killed) / float64(s.Total)
}

// EvaluateEnvironment runs every mutant in the environment on the
// platform and scores the environment, the core MC Mutants loop. It is
// EvaluateEnvironments on a single environment with default campaign
// options (serial, no checkpoint).
func (st *Study) EvaluateEnvironment(p Platform, env harness.Params, iterations int, seed uint64) (*EnvScore, error) {
	return st.EvaluateEnvironments(p, []harness.Params{env}, iterations, seed, CampaignOptions{})
}

// Finding is one conformance test's result on a platform.
type Finding struct {
	// Test is the conformance test name.
	Test string
	// Mutator is the generating mutator family.
	Mutator string
	// Instances and Violations count executed instances and disallowed
	// outcomes.
	Instances  int
	Violations int
	// ViolationRate is violations per simulated second.
	ViolationRate float64
	// Outcome is a violating outcome's postcondition form, empty when
	// conformant.
	Outcome string
	// Explanation is the happens-before cycle that makes the outcome
	// illegal, in the paper's notation.
	Explanation string
	// Error is set when the test's cell failed permanently — a device
	// fault or a quarantine — and the finding carries no outcome data.
	Error string
	// Quarantined marks cells skipped by the device circuit breaker.
	Quarantined bool
	// Interrupted marks cells abandoned by campaign cancellation: the
	// test is pending, not failed, and runs again on resume.
	Interrupted bool
}

// ConformanceReport is the result of running the conformance suite.
type ConformanceReport struct {
	Platform Platform
	Findings []Finding
	// Health summarizes the platform device's campaign health when the
	// fleet ran with a circuit breaker.
	Health []sched.DeviceHealth
	// Interrupted is true when the campaign was cancelled before the
	// platform's every test ran; interrupted findings are pending, not
	// failed.
	Interrupted bool
	// StorageDegraded is true when the campaign's checkpoint degraded
	// to in-memory on a persistent storage failure (ENOSPC, EIO); the
	// findings are complete but not durably checkpointed. StorageErr
	// carries the cause.
	StorageDegraded bool
	StorageErr      string
}

// Failed returns the findings whose cells produced no data (device
// failures and quarantined cells). Interrupted findings are pending,
// not failed, and are excluded.
func (r *ConformanceReport) Failed() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Error != "" && !f.Interrupted {
			out = append(out, f)
		}
	}
	return out
}

// Buggy returns the findings with violations.
func (r *ConformanceReport) Buggy() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Violations > 0 {
			out = append(out, f)
		}
	}
	return out
}

// CheckConformance runs all 20 conformance tests on the platform in
// the environment, explaining each discovered violation. It is
// CheckFleetConformance on a single-platform fleet with default
// campaign options (serial, no checkpoint).
func (st *Study) CheckConformance(p Platform, env harness.Params, iterations int, seed uint64) (*ConformanceReport, error) {
	reports, err := st.CheckFleetConformance([]Platform{p}, env, iterations, seed, CampaignOptions{})
	if err != nil {
		return nil, err
	}
	return reports[0], nil
}

// explainViolation renders the hb cycle of a disallowed outcome, or a
// consistency note when the outcome is memory corruption.
func explainViolation(test *litmus.Test, o litmus.Outcome) string {
	v, err := test.Classify(o)
	if err != nil {
		return fmt.Sprintf("unclassifiable: %v", err)
	}
	if v.Allowed {
		return "" // not actually a violation; defensive
	}
	if !v.Consistent {
		return "value inconsistency: a read or final value traces to no write"
	}
	x, err := test.Execution(o)
	if err != nil || len(v.Cycle) == 0 {
		return "disallowed under " + test.Model.String()
	}
	return x.ExplainCycle(v.Cycle)
}

// CTSEntry is one curated test of a conformance test suite plan.
type CTSEntry struct {
	// Test is the mutant whose reproducibility backs the conformance
	// test's inclusion.
	Test string
	// Env is the chosen environment key from the tuning dataset.
	Env string
	// DevicesMeeting and TotalDevices report Algorithm 1's coverage.
	DevicesMeeting, TotalDevices int
	// MinPositiveRate is the tie-breaking minimum nonzero rate.
	MinPositiveRate float64
	// Reproducible is true when the ceiling rate was met on every
	// device.
	Reproducible bool
}

// CTSPlan is a curated suite: one environment per test plus the
// aggregate confidence numbers of Sec. 4.2.
type CTSPlan struct {
	Family string
	Target float64
	Budget float64
	// Entries lists per-test choices.
	Entries []CTSEntry
	// MutationScore is the fraction of mutants reproducible everywhere
	// at this target and budget.
	MutationScore float64
	// TotalReproducibility is the chance one CTS run reproduces every
	// reproducible mutant: target^k for k reproducible entries.
	TotalReproducibility float64
	// TotalBudgetSeconds is budget times the number of entries.
	TotalBudgetSeconds float64
}

// CurateCTS applies Algorithm 1 over a tuning dataset's family to pick
// one environment per mutant and assemble the plan.
func CurateCTS(ds *tuning.Dataset, family string, target, budget float64) (*CTSPlan, error) {
	tables := ds.RateTables(family)
	if len(tables) == 0 {
		return nil, fmt.Errorf("core: dataset has no %q mutant records", family)
	}
	devices := ds.Devices()
	plan := &CTSPlan{Family: family, Target: target, Budget: budget}
	reproducible := 0
	for _, tr := range tables {
		m, err := confidence.MergeEnvironments(tr.Rates, devices, target, budget)
		if err != nil {
			return nil, err
		}
		e := CTSEntry{
			Test:           tr.Test,
			Env:            m.Env,
			DevicesMeeting: m.DevicesMeeting,
			TotalDevices:   m.TotalDevices,
			Reproducible:   m.ReproducibleEverywhere(),
		}
		if !math.IsInf(m.MinPositiveRate, 1) {
			e.MinPositiveRate = m.MinPositiveRate
		}
		if e.Reproducible {
			reproducible++
		}
		plan.Entries = append(plan.Entries, e)
	}
	sort.Slice(plan.Entries, func(i, j int) bool { return plan.Entries[i].Test < plan.Entries[j].Test })
	plan.MutationScore = float64(reproducible) / float64(len(plan.Entries))
	plan.TotalReproducibility = confidence.TotalScore(target, reproducible)
	plan.TotalBudgetSeconds = budget * float64(len(plan.Entries))
	return plan, nil
}
