package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/diskio"
)

// store is the durable job registry. Every job record is one JSON
// file under <dir>/jobs/, published atomically through the diskio
// seam, so a crash at any instant leaves either the previous record
// or the new one. The in-memory index is the source of truth while
// the server runs; the files exist so a restarted server can rebuild
// it and resume interrupted work.
type store struct {
	fs  diskio.FS
	dir string

	mu   sync.Mutex
	jobs map[string]*Job
}

// jobsDir, ckptDir and reportsDir partition the state directory.
const (
	jobsDir    = "jobs"
	ckptDir    = "ckpt"
	reportsDir = "reports"
)

// openStore opens (creating if needed) the state directory and loads
// every persisted job record. Records that fail to decode are skipped
// with a warning through warnf — the atomic writer should make that
// impossible, but a tolerant boot beats refusing to serve the healthy
// majority.
func openStore(fsys diskio.FS, dir string, warnf func(format string, args ...any)) (*store, error) {
	for _, sub := range []string{jobsDir, ckptDir, reportsDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("serve: state dir: %w", err)
		}
	}
	st := &store{fs: fsys, dir: dir, jobs: map[string]*Job{}}
	entries, err := os.ReadDir(filepath.Join(dir, jobsDir))
	if err != nil {
		return nil, fmt.Errorf("serve: scan jobs: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, jobsDir, e.Name())
		j, err := st.loadJob(path)
		if err != nil {
			warnf("serve: skipping unreadable job record %s: %v", path, err)
			continue
		}
		st.jobs[j.ID] = j
	}
	return st, nil
}

// loadJob reads one persisted record through the filesystem seam.
func (st *store) loadJob(path string) (*Job, error) {
	f, err := st.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	var j Job
	if err := json.Unmarshal(data, &j); err != nil {
		return nil, err
	}
	if j.ID == "" {
		return nil, fmt.Errorf("record has no id")
	}
	return &j, nil
}

// jobPath is the record file for a job ID.
func (st *store) jobPath(id string) string {
	return filepath.Join(st.dir, jobsDir, id+".json")
}

// CheckpointPath is the scheduler checkpoint for a job; evaluate jobs
// suffix it per device (one campaign per device, like the CLI).
func (st *store) checkpointPath(id string) string {
	return filepath.Join(st.dir, ckptDir, id)
}

// reportPath is the published artifact for a completed job.
func (st *store) reportPath(id string) string {
	return filepath.Join(st.dir, reportsDir, id+".json")
}

// persistLocked writes j's record atomically. Callers hold st.mu.
func (st *store) persistLocked(j *Job) error {
	data, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		return err
	}
	return diskio.WriteFileAtomic(st.fs, st.jobPath(j.ID), append(data, '\n'))
}

// put registers a new job and persists its record.
func (st *store) put(j *Job) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.persistLocked(j); err != nil {
		return err
	}
	st.jobs[j.ID] = j.clone()
	return nil
}

// drop removes a job from the index and deletes its record — the
// rollback path when admission fails after the record was written.
func (st *store) drop(id string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.jobs, id)
	st.fs.Remove(st.jobPath(id))
}

// get returns a copy of the job, if tracked.
func (st *store) get(id string) (*Job, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, false
	}
	return j.clone(), true
}

// update applies fn to a copy of the job under the store lock,
// persists the copy, and installs it into the index only once the
// write succeeded — a persist failure leaves both memory and disk on
// the previous record instead of letting them diverge (an in-memory
// "running" job with no runner would otherwise be stuck until
// restart).
func (st *store) update(id string, fn func(*Job)) (*Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %s", id)
	}
	next := j.clone()
	fn(next)
	if err := st.persistLocked(next); err != nil {
		return nil, err
	}
	st.jobs[id] = next
	return next.clone(), nil
}

// updateForce is update for terminal transitions: the new record is
// installed in memory whether or not the persist succeeds, and the
// persist error is returned alongside it. Memory deliberately runs
// ahead of disk here — the runner is done with the job, so clients
// must see the terminal state even on a dead disk, and a stale
// non-terminal record on disk is safe: boot recovery re-queues it and
// the job resumes (or re-completes) from its checkpoint.
func (st *store) updateForce(id string, fn func(*Job)) (*Job, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.jobs[id]
	if !ok {
		return nil, fmt.Errorf("serve: unknown job %s", id)
	}
	next := j.clone()
	fn(next)
	st.jobs[id] = next
	if err := st.persistLocked(next); err != nil {
		return next.clone(), err
	}
	return next.clone(), nil
}

// list returns copies of every job, oldest submission first (ties
// broken by ID so the order is total).
func (st *store) list() []*Job {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Job, 0, len(st.jobs))
	for _, j := range st.jobs {
		out = append(out, j.clone())
	}
	sort.Slice(out, func(a, b int) bool {
		if !out[a].SubmittedAt.Equal(out[b].SubmittedAt) {
			return out[a].SubmittedAt.Before(out[b].SubmittedAt)
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// countByState tallies jobs per lifecycle state (the /metrics gauge).
func (st *store) countByState() map[JobState]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := map[JobState]int{}
	for _, j := range st.jobs {
		out[j.State]++
	}
	return out
}

// inFlight counts a client's live (queued or running) jobs — the
// admission-control denominator for the per-client cap.
func (st *store) inFlight(client string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.Client == client && !j.State.Terminal() {
			n++
		}
	}
	return n
}

// storageDegradedCount counts jobs whose campaigns finished with a
// degraded checkpoint (the /metrics storage gauge).
func (st *store) storageDegradedCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, j := range st.jobs {
		if j.Summary != nil && j.Summary.StorageDegraded {
			n++
		}
	}
	return n
}
