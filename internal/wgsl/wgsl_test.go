package wgsl

import (
	"strings"
	"testing"

	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/mutation"
	"repro/internal/xrand"
)

var fenced = gpu.Program{
	{Op: gpu.OpStore, Addr: 0, Imm: 1},
	{Op: gpu.OpFence},
	{Op: gpu.OpStore, Addr: 1, Imm: 1},
}

func countFences(p gpu.Program) int {
	n := 0
	for _, in := range p {
		if in.Op == gpu.OpFence {
			n++
		}
	}
	return n
}

func TestConformantVulkanPreservesFences(t *testing.T) {
	tc := &Toolchain{Backend: gpu.Vulkan, Driver: DriverConformant}
	out, passes := tc.Lower(fenced)
	if countFences(out) != 1 {
		t.Fatalf("conformant vulkan lowered %d fences, want 1:\n%v", countFences(out), out)
	}
	if len(passes) == 0 {
		t.Fatal("no passes reported")
	}
	// Annotation must not leak into the final encoding.
	for _, in := range out {
		if in.Op == gpu.OpFence && in.Imm != 0 {
			t.Fatalf("fence kept annotation %#x", in.Imm)
		}
	}
}

func TestDefectiveVulkanDropsFences(t *testing.T) {
	tc := &Toolchain{Backend: gpu.Vulkan, Driver: DriverFenceDropping}
	out, passes := tc.Lower(fenced)
	if countFences(out) != 0 {
		t.Fatalf("defective driver kept %d fences", countFences(out))
	}
	found := false
	for _, p := range passes {
		if strings.Contains(p, "defective") {
			found = true
		}
	}
	if !found {
		t.Fatalf("defective pass not reported: %v", passes)
	}
	// Non-fence instructions survive untouched, in order.
	if len(out) != 2 || out[0].Op != gpu.OpStore || out[1].Op != gpu.OpStore {
		t.Fatalf("lowering mangled program: %v", out)
	}
}

func TestMetalAndHLSLPreserveFences(t *testing.T) {
	for _, backend := range []gpu.Backend{gpu.Metal, gpu.HLSL} {
		tc := &Toolchain{Backend: backend, Driver: DriverFenceDropping}
		// The defect is Vulkan-specific; other backends keep fences even
		// with the "defective" flag because their pipelines differ.
		out, _ := tc.Lower(fenced)
		if countFences(out) != 1 {
			t.Fatalf("%v: %d fences, want 1", backend, countFences(out))
		}
	}
}

func TestLoweringDoesNotMutateInput(t *testing.T) {
	in := make(gpu.Program, len(fenced))
	copy(in, fenced)
	tc := &Toolchain{Backend: gpu.Vulkan, Driver: DriverFenceDropping}
	tc.Lower(in)
	for i := range in {
		if in[i] != fenced[i] {
			t.Fatal("Lower mutated its input")
		}
	}
}

func TestFoldRedundantFences(t *testing.T) {
	p := gpu.Program{
		{Op: gpu.OpFence}, {Op: gpu.OpFence},
		{Op: gpu.OpStore, Addr: 0, Imm: 1},
		{Op: gpu.OpFence}, {Op: gpu.OpFence}, {Op: gpu.OpFence},
		{Op: gpu.OpLoad, Addr: 0, Reg: 0},
	}
	out := foldRedundantFences{}.Apply(p)
	if countFences(out) != 2 {
		t.Fatalf("folded to %d fences, want 2", countFences(out))
	}
}

func TestNewToolchainFromProfile(t *testing.T) {
	amd, _ := gpu.ProfileByName("AMD")
	tc := NewToolchain(amd, DriverFenceDropping)
	if tc.Backend != gpu.Vulkan {
		t.Fatalf("AMD toolchain backend = %v", tc.Backend)
	}
	intel, _ := gpu.ProfileByName("Intel")
	if NewToolchain(intel, DriverConformant).Backend != gpu.Metal {
		t.Fatal("Intel toolchain should target Metal")
	}
}

func TestDriverVersionString(t *testing.T) {
	if DriverConformant.String() != "conformant" || DriverFenceDropping.String() != "fence-dropping" {
		t.Fatal("driver names wrong")
	}
}

// TestToolchainReproducesMPRelacqBug runs the full stack: the
// MP-relacq conformance test through the defective Vulkan toolchain on
// the conformant AMD device must show violations, while the conformant
// toolchain must not.
func TestToolchainReproducesMPRelacqBug(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("MP-relacq")
	prof, _ := gpu.ProfileByName("AMD")
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		t.Fatal(err)
	}
	env := harness.PTEBaseline(8, 16)
	env.MaxWorkgroups = env.TestingWorkgroups + 4
	env.MemStressPct = 100
	env.MemStressIters = 8
	env.PreStressPct = 80
	env.PreStressIters = 2
	env.MemStride = 2
	env.MemLocOffset = 1

	for _, c := range []struct {
		driver     DriverVersion
		wantViol   bool
		iterations int
	}{
		{DriverConformant, false, 6},
		{DriverFenceDropping, true, 12},
	} {
		r, err := harness.NewRunner(dev, env)
		if err != nil {
			t.Fatal(err)
		}
		r.Lower = NewToolchain(prof, c.driver).LowerFunc()
		res, err := r.Run(test, c.iterations, xrand.New(61))
		if err != nil {
			t.Fatal(err)
		}
		if c.wantViol && res.Violations == 0 {
			t.Errorf("driver %v: bug not observed in %d instances", c.driver, res.Instances)
		}
		if !c.wantViol && res.Violations > 0 {
			t.Errorf("driver %v: %d spurious violations", c.driver, res.Violations)
		}
	}
}

func TestEmitTestShader(t *testing.T) {
	suite := mutation.MustGenerate()
	for _, name := range []string{"CoRR", "MP-relacq", "CoWW", "SB-relacq-rmw"} {
		test, _ := suite.ByName(name)
		src := EmitTestShader(test, SourceOptions{Parallel: true, WorkgroupSize: 128})
		for _, want := range []string{
			"@compute @workgroup_size(128)",
			"fn permute(v : u32)",
			"test_locations",
			"atomic",
		} {
			if !strings.Contains(src, want) {
				t.Errorf("%s: shader missing %q:\n%s", name, want, src)
			}
		}
		if test.HasFences() && !strings.Contains(src, "storageBarrier()") {
			t.Errorf("%s: fence not rendered", name)
		}
	}
	// Single-instance rendering guards the invocation id.
	test, _ := suite.ByName("CoRR")
	src := EmitTestShader(test, SourceOptions{})
	if !strings.Contains(src, "if (gid.x >= 1u) { return; }") {
		t.Errorf("single-instance shader missing guard:\n%s", src)
	}
	if !strings.Contains(src, "@workgroup_size(256)") {
		t.Error("default workgroup size not applied")
	}
}

func TestEmitShaderMentionsMutant(t *testing.T) {
	suite := mutation.MustGenerate()
	test, _ := suite.ByName("CoRR-mutant")
	src := EmitTestShader(test, SourceOptions{Parallel: true})
	if !strings.Contains(src, "mutant of CoRR") {
		t.Error("mutant provenance missing from shader header")
	}
}

func BenchmarkLowerVulkan(b *testing.B) {
	tc := &Toolchain{Backend: gpu.Vulkan, Driver: DriverConformant}
	prog := make(gpu.Program, 0, 64)
	for i := 0; i < 20; i++ {
		prog = append(prog, gpu.Instr{Op: gpu.OpStore, Addr: uint32(i), Imm: 1}, gpu.Instr{Op: gpu.OpFence})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc.Lower(prog)
	}
}
