package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/diskio"
	"repro/internal/resultcache"
)

// TestServeCacheWarmResubmitByteIdentical: two servers sharing one
// cache directory. The first runs a job cold and publishes every cell;
// the second (fresh state dir, so the job is not simply replayed from
// its own records) serves the same spec entirely from the cache — with
// a byte-identical artifact, per-job cache counters in the summary, and
// fleet traffic on /metrics.
func TestServeCacheWarmResubmitByteIdentical(t *testing.T) {
	cacheDir := t.TempDir()

	_, c1 := startServer(t, Config{Runners: 1, JobWorkers: 4, CacheDir: cacheDir})
	ctx := context.Background()
	sub, err := c1.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := c1.Wait(ctx, sub.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if cold.State != StateDone {
		t.Fatalf("cold job state = %s (%s)", cold.State, cold.Error)
	}
	if cold.Summary.CacheHits != 0 || cold.Summary.CacheMisses != cold.Cells {
		t.Fatalf("cold cache counters: %+v", cold.Summary)
	}
	want := localConformanceArtifact(t, cold.Spec)
	got, err := c1.Report(ctx, cold.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("cold cached artifact differs from the local oracle")
	}

	_, c2 := startServer(t, Config{Runners: 1, JobWorkers: 4, CacheDir: cacheDir})
	sub2, err := c2.Submit(ctx, smallConformance())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := c2.Wait(ctx, sub2.Job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if warm.State != StateDone {
		t.Fatalf("warm job state = %s (%s)", warm.State, warm.Error)
	}
	if warm.Summary.CacheHits != warm.Cells || warm.Summary.Executed != 0 {
		t.Fatalf("warm job did not run from the cache: %+v", warm.Summary)
	}
	got2, err := c2.Report(ctx, warm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, want) {
		t.Fatal("warm cached artifact differs from the local oracle")
	}

	resp, err := http.Get(c2.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, wantLine := range []string{
		fmt.Sprintf("mcmutants_cache_hits_total %d", warm.Cells),
		"mcmutants_cache_misses_total 0",
		"mcmutants_cache_corrupt_total 0",
		"mcmutants_cache_degraded 0",
	} {
		if !strings.Contains(body, wantLine) {
			t.Errorf("metrics missing %q\n%s", wantLine, body)
		}
	}
	code, hb := probe(t, c2.BaseURL, "/readyz")
	if code != http.StatusOK || hb["cache_degraded"] != false {
		t.Fatalf("readyz = %d %v, want 200 with cache_degraded=false", code, hb)
	}
}

// TestReadyzCacheDegradedNonGating: a degraded result cache is reported
// on the health endpoints and /metrics, but — unlike a degraded job
// checkpoint — it never takes the server out of rotation: the cache is
// an optimization, losing it only costs recomputation.
func TestReadyzCacheDegradedNonGating(t *testing.T) {
	s, c, _ := queuedServer(t, Config{})

	ffs := diskio.NewFaultFS(diskio.OS{}, 1)
	ffs.FailFrom(1, syscall.ENOSPC)
	dc, err := resultcache.Open(t.TempDir(), resultcache.Options{FS: ffs})
	if err != nil {
		t.Fatalf("a full disk must yield a degraded cache, not an error: %v", err)
	}
	if dc.Degraded() == nil {
		t.Fatal("cache not degraded")
	}
	s.cache = dc

	code, body := probe(t, c.BaseURL, "/readyz")
	if code != http.StatusOK || body["ready"] != true {
		t.Fatalf("readyz with degraded cache = %d %v, want 200 ready (non-gating)", code, body)
	}
	if body["cache_degraded"] != true {
		t.Fatalf("readyz does not report the degraded cache: %v", body)
	}
	if code, body := probe(t, c.BaseURL, "/healthz"); code != http.StatusOK || body["cache_degraded"] != true {
		t.Fatalf("healthz = %d %v, want 200 with cache_degraded=true", code, body)
	}

	resp, err := http.Get(c.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "mcmutants_cache_degraded 1") {
		t.Fatalf("metrics missing degraded gauge:\n%s", buf.String())
	}
}
