package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/resultcache"
)

// cacheFlags is the shared result-cache flag set: campaign, tune and
// work all take -cache-dir (caching off when empty) and -cache-max-mb.
type cacheFlags struct {
	dir   *string
	maxMB *int64
}

func addCacheFlags(fs *flag.FlagSet) *cacheFlags {
	return &cacheFlags{
		dir:   fs.String("cache-dir", "", "persistent result-cache directory; cells already computed under identical parameters are served from it (empty: caching off)"),
		maxMB: fs.Int64("cache-max-mb", 0, "result-cache size budget in MiB, enforced by LRU compaction at open; 0 means unbounded"),
	}
}

// open validates the flags and opens the cache, fail-fast: an unusable
// directory (permissions, a file where the directory should be) is a
// configuration error — exit 1 before any campaign work begins, the
// same policy probeOutputPaths applies to output paths. A genuine
// storage fault (ENOSPC, EIO) instead yields a cache already degraded
// to pass-through: a full disk costs cache savings, never the
// campaign. A nil, nil return means caching is off.
func (cf *cacheFlags) open() (*resultcache.Cache, error) {
	if *cf.dir == "" {
		return nil, nil
	}
	if *cf.maxMB < 0 {
		return nil, fmt.Errorf("-cache-max-mb must be >= 0")
	}
	c, err := resultcache.Open(*cf.dir, resultcache.Options{MaxBytes: *cf.maxMB << 20})
	if err != nil {
		return nil, fmt.Errorf("cache dir not usable: %w", err)
	}
	return c, nil
}

// cacheSummary prints one line of cache traffic after a run, plus a
// degradation notice when the cache fell back to pass-through. Cache
// state never changes artifacts or exit codes — a degraded cache only
// costs time — so this is stderr-only observability.
func cacheSummary(w io.Writer, c *resultcache.Cache) {
	if c == nil {
		return
	}
	st := c.Stats()
	fmt.Fprintf(w, "mcmutants: cache: %d hit(s), %d miss(es), %d corrupt (quarantined), %d stored\n",
		st.Hits, st.Misses, st.Corrupt, st.Puts)
	if st.Degraded {
		fmt.Fprintf(w, "mcmutants: cache degraded to pass-through: %s\n", st.Err)
	}
}
