package litmus

import (
	"strings"
	"testing"

	"repro/internal/mm"
)

// TestFormatRoundTripCatalog: parsing a formatted test reproduces it.
func TestFormatRoundTripCatalog(t *testing.T) {
	for _, tc := range Catalog() {
		text := Format(tc)
		back, err := ParseString(text)
		if err != nil {
			t.Fatalf("%s: parse: %v\n%s", tc.Name, err, text)
		}
		if back.Name != tc.Name || back.Model != tc.Model {
			t.Errorf("%s: header changed", tc.Name)
		}
		if len(back.Threads) != len(tc.Threads) {
			t.Fatalf("%s: %d threads, want %d", tc.Name, len(back.Threads), len(tc.Threads))
		}
		for ti := range tc.Threads {
			a, b := tc.Threads[ti], back.Threads[ti]
			if a.Observer != b.Observer || len(a.Instrs) != len(b.Instrs) {
				t.Fatalf("%s: thread %d shape changed", tc.Name, ti)
			}
			for ii := range a.Instrs {
				x, y := a.Instrs[ii], b.Instrs[ii]
				if x.Op != y.Op || x.Loc != y.Loc || x.Val != y.Val ||
					(x.Reads() && x.Reg != y.Reg) {
					t.Errorf("%s: t%d i%d: %+v != %+v", tc.Name, ti, ii, x, y)
				}
			}
		}
		if back.Target.String() != tc.Target.String() {
			t.Errorf("%s: target %q != %q", tc.Name, back.Target, tc.Target)
		}
	}
}

func TestFormatPreservesMutantMetadata(t *testing.T) {
	src := `test MP-relacq-nofence
model rel-acq-SC-per-location
mutator weakening sw
mutant-of MP-relacq
fences-removed 2
thread
  store x 1
  store y 2
thread
  r0 = load y
  r1 = load x
target r0=2 r1=0
`
	tc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.IsMutant || tc.Base != "MP-relacq" || tc.FencesRemoved != 2 {
		t.Fatalf("metadata lost: %+v", tc)
	}
	if tc.Mutator != "weakening sw" {
		t.Fatalf("mutator %q", tc.Mutator)
	}
	// Round trip keeps it.
	back, err := ParseString(Format(tc))
	if err != nil {
		t.Fatal(err)
	}
	if back.Base != tc.Base || back.FencesRemoved != tc.FencesRemoved || back.Mutator != tc.Mutator {
		t.Fatal("metadata lost on round trip")
	}
}

func TestParseComments(t *testing.T) {
	src := `# a litmus test
test demo   # trailing comment
model SC-per-location
thread
  # a whole-line comment
  store x 1
thread
  r0 = load x
target r0=0
`
	tc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Name != "demo" || tc.Instructions() != 2 {
		t.Fatalf("parsed %+v", tc)
	}
}

func TestParseExchangeAndFence(t *testing.T) {
	src := `test xchg
model TSO
thread
  store x 1
  fence
  r0 = exchange y 2
thread
  r1 = load y
target r0=0 r1=2 y=2
`
	tc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !tc.HasFences() {
		t.Fatal("fence lost")
	}
	if tc.Threads[0].Instrs[2].Op != OpExchange || tc.Threads[0].Instrs[2].Val != 2 {
		t.Fatalf("exchange mangled: %+v", tc.Threads[0].Instrs[2])
	}
	if tc.Model != mm.TSO {
		t.Fatalf("model %v", tc.Model)
	}
	if tc.Target.Final[1] != 2 {
		t.Fatalf("final target lost: %v", tc.Target)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no target", "test a\nthread\n store x 1\n"},
		{"instr before thread", "test a\nstore x 1\ntarget x=1\n"},
		{"bad model", "test a\nmodel bogus\nthread\n store x 1\ntarget x=1\n"},
		{"bad location", "test a\nthread\n store q 1\ntarget x=1\n"},
		{"bad value", "test a\nthread\n store x one\ntarget x=1\n"},
		{"bad op", "test a\nthread\n r0 = frob x\ntarget x=1\n"},
		{"bad target assign", "test a\nthread\n store x 1\ntarget x\n"},
		{"bad target value", "test a\nthread\n store x 1\ntarget x=banana\n"},
		{"bad register", "test a\nthread\n rx = load x\ntarget x=1\n"},
		{"zero store", "test a\nthread\n store x 0\ntarget x=0\n"},
		{"gap register", "test a\nthread\n r1 = load x\nthread\n store x 1\ntarget r1=0\n"},
		{"store arity", "test a\nthread\n store x\ntarget x=1\n"},
		{"load arity", "test a\nthread\n r0 = load x 3\ntarget r0=0\n"},
		{"exchange arity", "test a\nthread\n r0 = exchange x\ntarget r0=0\n"},
		{"fences-removed junk", "test a\nfences-removed two\nthread\n store x 1\ntarget x=1\n"},
	}
	for _, c := range cases {
		if _, err := ParseString(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParsedTestIsRunnable(t *testing.T) {
	// A hand-written file defines a working test usable by the checker.
	src := `test custom-mp
model SC-per-location
thread
  store x 1
  store y 2
thread
  r0 = load y
  r1 = load x
target r0=2 r1=0
`
	tc, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	v, err := tc.Classify(Outcome{Regs: []mm.Val{2, 0}, Final: []mm.Val{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Allowed {
		t.Fatal("weak MP outcome should be coherence-allowed")
	}
	if v2, _ := tc.Classify(Outcome{Regs: []mm.Val{2, 3}, Final: []mm.Val{1, 2}}); v2.Consistent {
		t.Fatal("out-of-thin-air value not flagged")
	}
}

func TestLocIndexRoundTrip(t *testing.T) {
	for l := 0; l < 6; l++ {
		name := mm.LocName(mm.Loc(l))
		got, ok := locIndex(name)
		if !ok || got != l {
			t.Errorf("locIndex(%q) = %d, %v", name, got, ok)
		}
	}
	if got, ok := locIndex("m9"); !ok || got != 9 {
		t.Errorf("locIndex(m9) = %d, %v", got, ok)
	}
	if _, ok := locIndex("zz"); ok {
		t.Error("locIndex accepted zz")
	}
}

func TestFormatIsStable(t *testing.T) {
	tc := MPRelAcq()
	if Format(tc) != Format(tc) {
		t.Fatal("Format is nondeterministic")
	}
	if !strings.Contains(Format(tc), "model rel-acq-SC-per-location") {
		t.Fatal("model line missing")
	}
}
