// Command mcmutants is the MC Mutants workbench: it generates the
// litmus/mutant suite, runs tests in SITE/PTE environments on the
// simulated device fleet, performs tuning studies, and analyzes the
// results — mirroring the paper artifact's workflow (tuning runs plus
// the mutation-score / merge / correlation analyses).
//
// Usage:
//
//	mcmutants suite [-show name] [-explain] [-templates] [-assignment] [-shader name]
//	mcmutants devices
//	mcmutants run -test NAME [-device NAME] [-env pte|site|pte-baseline|site-baseline] [-iters N] [-seed N] [-buggy]
//	mcmutants conformance [-device NAME] [-iters N] [-seed N] [-fence-bug] [-coherence-bug] [-stale-cache-bug]
//	mcmutants campaign -kind conformance|evaluate [-out FILE] [-devices A,B] [-envs pte,site] [-iters N] [-seed N] [-parallel N] [-checkpoint FILE] [-resume] [-fsync-every N] [-deadline D] [-cell-timeout D] [-faults] [-fault-rate P] [-watchdog N] [-loss-after N] [-workers-addr HOST:PORT] [-lease-ttl D] [-range-cells N] [-stall-timeout D]
//	mcmutants work -coordinator URL [-parallel N] [-id NAME] [-poll D] [-once] [-cpuprofile FILE] [-memprofile FILE]
//	mcmutants tune [-out FILE] [-envs N] [-site-iters N] [-pte-iters N] [-paper-scale] [-devices A,B] [-seed N] [-parallel N] [-checkpoint FILE] [-resume] [-fsync-every N] [-deadline D] [-cell-timeout D] [-faults] [-fault-rate P] [-watchdog N] [-loss-after N]
//	mcmutants analyze -action mutation-score|merge|correlation [-stats FILE] [-family NAME] [-rep PCT] [-budget SECONDS] [-envs N] [-iters N]
//	mcmutants cts -stats FILE [-family NAME] [-rep PCT] [-budget SECONDS]
//	mcmutants serve [-addr HOST:PORT] [-state DIR] [-runners N] [-parallel N] [-queue N] [-per-client N] [-fsync-every N] [-dist] [-dist-lease-ttl D] [-default-wall-deadline D] [-max-wall-deadline D] [-default-cell-timeout D] [-max-cell-timeout D] [-default-stall-timeout D] [-max-stall-timeout D] [-poison-boots N] [-mem-soft-mb N] [-mem-hard-mb N] [-quiet]
//	mcmutants version
//
// Exit status: 0 on success, 1 on usage or fatal errors, 2 when a
// campaign or tuning run completed but degraded — some cells produced
// no data (device failures or quarantined cells), or the checkpoint
// hit a persistent storage failure (ENOSPC/EIO) and the run finished
// in-memory — and 130 when the run was interrupted (SIGINT/SIGTERM or
// -deadline expiry) after a graceful drain — completed cells are
// checkpointed and the run is resumable with -resume.
//
// Final artifacts (datasets, reports, profiles) are published
// atomically: write temp → fsync → rename → fsync dir, so a crash at
// any instant leaves either the previous complete artifact or the new
// one, never a partial file.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/confidence"
	"repro/internal/core"
	"repro/internal/diskio"
	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/guard"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/mutation"
	"repro/internal/report"
	"repro/internal/sched"
	"repro/internal/serve"
	"repro/internal/tuning"
	"repro/internal/wgsl"
	"repro/internal/xrand"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mcmutants:", err)
		os.Exit(exitCode(err))
	}
}

// partialFailure signals a campaign that completed on a degraded fleet:
// usable results were produced and written, but some cells failed or
// were quarantined. It maps to exit code 2 so scripts can distinguish
// "complete", "usable but degraded" and "fatal".
type partialFailure struct{ msg string }

func (e *partialFailure) Error() string { return e.msg }

// ExitCode selects the degraded-completion exit status.
func (e *partialFailure) ExitCode() int { return 2 }

// interruptedRun signals a campaign that was cancelled — SIGINT,
// SIGTERM or -deadline expiry — and drained gracefully: completed cells
// are checkpointed, partial output is written, and a -resume run picks
// up the remainder. It maps to exit code 130, the shell convention for
// an interrupted process, distinct from fatal (1) and degraded (2).
type interruptedRun struct{ msg string }

func (e *interruptedRun) Error() string { return e.msg }

// ExitCode selects the interrupted exit status.
func (e *interruptedRun) ExitCode() int { return 130 }

// exitCode maps an error to the process exit status: errors carrying an
// ExitCode method choose their own (partial failures exit 2); anything
// else — usage mistakes, fatal campaign errors — exits 1.
func exitCode(err error) int {
	var ec interface{ ExitCode() int }
	if errors.As(err, &ec) {
		return ec.ExitCode()
	}
	return 1
}

// run installs the interrupt handler and dispatches the subcommand.
// The first SIGINT/SIGTERM cancels the context — long-running
// subcommands drain gracefully and exit 130 — and a second signal kills
// the process immediately (signal.NotifyContext restores the default
// disposition once the context is cancelled).
func run(args []string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return dispatch(ctx, args)
}

func dispatch(ctx context.Context, args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "suite":
		return cmdSuite(args[1:])
	case "devices":
		fmt.Print(report.Table3())
		return nil
	case "run":
		return cmdRun(args[1:])
	case "conformance":
		return cmdConformance(args[1:])
	case "campaign":
		return cmdCampaign(ctx, args[1:])
	case "work":
		return cmdWork(ctx, args[1:])
	case "tune":
		return cmdTune(ctx, args[1:])
	case "analyze":
		return cmdAnalyze(args[1:])
	case "cts":
		return cmdCTS(args[1:])
	case "serve":
		return cmdServe(ctx, args[1:])
	case "optimize":
		return cmdOptimize(args[1:])
	case "trace":
		return cmdTrace(args[1:])
	case "version":
		fmt.Println(buildinfo.Get())
		return nil
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `mcmutants — MC Mutants for a simulated WebGPU device fleet

subcommands:
  suite        list or inspect the generated 20+32 test suite
  devices      print the device fleet (Table 3)
  run          run one test in one environment on one device
  conformance  run the conformance suite against a platform
  campaign     run a scheduled fleet campaign (conformance or evaluate)
  work         execute leased cell ranges for a remote campaign coordinator
  tune         run a tuning study and save the dataset (JSON)
  analyze      mutation-score / merge / correlation analyses
  cts          curate a conformance-test-suite plan from a dataset
  serve        run the multi-tenant HTTP campaign service
  optimize     search for a per-test specialized environment
  trace        run one instance with event tracing and verification
  version      print the build identity (also in /healthz and /metrics)`)
}

func cmdSuite(args []string) error {
	fs := flag.NewFlagSet("suite", flag.ContinueOnError)
	show := fs.String("show", "", "print one test's program (comma-separated names allowed)")
	explain := fs.Bool("explain", false, "print Fig. 2 candidate executions with hb cycles")
	templates := fs.Bool("templates", false, "print the Fig. 3 mutator templates")
	assignment := fs.Bool("assignment", false, "print a Fig. 4 PTE assignment example")
	shader := fs.String("shader", "", "emit the WGSL shader for a test")
	export := fs.String("export", "", "write every test as a .litmus file into this directory")
	dot := fs.String("dot", "", "emit a Graphviz DOT graph of a test's target execution")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := mutation.Generate()
	if err != nil {
		return err
	}
	switch {
	case *show != "":
		for _, name := range strings.Split(*show, ",") {
			t, ok := suite.ByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("unknown test %q", name)
			}
			fmt.Println(t)
		}
	case *explain:
		out, err := report.Fig2(suite)
		if err != nil {
			return err
		}
		fmt.Print(out)
	case *templates:
		fmt.Print(report.Fig3())
	case *assignment:
		fmt.Print(report.Fig4(8, 1))
	case *shader != "":
		t, ok := suite.ByName(*shader)
		if !ok {
			return fmt.Errorf("unknown test %q", *shader)
		}
		fmt.Print(wgsl.EmitTestShader(t, wgsl.SourceOptions{Parallel: true, WorkgroupSize: 256}))
	case *dot != "":
		t, ok := suite.ByName(*dot)
		if !ok {
			return fmt.Errorf("unknown test %q", *dot)
		}
		x, err := t.TargetExecution()
		if err != nil {
			return err
		}
		fmt.Print(x.ToDOT(t.Model, t.Name))
	case *export != "":
		if err := os.MkdirAll(*export, 0o755); err != nil {
			return err
		}
		n := 0
		for _, t := range suite.All() {
			name := strings.NewReplacer("/", "_", "+", "p").Replace(t.Name)
			path := filepath.Join(*export, name+".litmus")
			if err := diskio.WriteFileAtomic(diskio.OS{}, path, []byte(litmus.Format(t))); err != nil {
				return err
			}
			n++
		}
		fmt.Printf("wrote %d .litmus files to %s\n", n, *export)
	default:
		fmt.Print(report.Table2(suite))
		fmt.Println()
		fmt.Print(report.SuiteListing(suite))
	}
	return nil
}

// envByName resolves an environment preset (see core.EnvByName).
func envByName(name string, wgs, wgSize int) (harness.Params, error) {
	return core.EnvByName(name, wgs, wgSize)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	testName := fs.String("test", "MP", "test name from the suite")
	testFile := fs.String("file", "", "run a test parsed from a .litmus file instead")
	device := fs.String("device", "AMD", "device short name")
	envName := fs.String("env", "pte", "environment preset")
	iters := fs.Int("iters", 20, "kernel launches")
	seed := fs.Uint64("seed", 1, "random seed")
	wgs := fs.Int("workgroups", 16, "testing workgroups (PTE)")
	wgSize := fs.Int("wgsize", 32, "workgroup size (PTE)")
	fenceBug := fs.Bool("buggy", false, "use the fence-dropping driver")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var test *litmus.Test
	if *testFile != "" {
		f, err := os.Open(*testFile)
		if err != nil {
			return err
		}
		test, err = litmus.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		suite, err := mutation.Generate()
		if err != nil {
			return err
		}
		t, ok := suite.ByName(*testName)
		if !ok {
			return fmt.Errorf("unknown test %q", *testName)
		}
		test = t
	}
	prof, ok := gpu.ProfileByName(*device)
	if !ok {
		return fmt.Errorf("unknown device %q", *device)
	}
	env, err := envByName(*envName, *wgs, *wgSize)
	if err != nil {
		return err
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		return err
	}
	runner, err := harness.NewRunner(dev, env)
	if err != nil {
		return err
	}
	driver := wgsl.DriverConformant
	if *fenceBug {
		driver = wgsl.DriverFenceDropping
	}
	runner.Lower = wgsl.NewToolchain(prof, driver).LowerFunc()
	res, err := runner.Run(test, *iters, xrand.New(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s in %s (%d iterations, %d instances)\n",
		test.Name, prof.ShortName, *envName, res.Iterations, res.Instances)
	fmt.Printf("target %s: %d observations (%.4g/s simulated)\n",
		test.Target, res.TargetCount, res.TargetRate())
	fmt.Printf("violations: %d (%.4g/s)\n", res.Violations, res.ViolationRate())
	fmt.Printf("simulated %.6fs, wall %.3fs\n", res.SimSeconds, res.WallSeconds)
	fmt.Println("outcomes:")
	fmt.Println(res.Hist)
	return nil
}

func cmdConformance(args []string) error {
	fs := flag.NewFlagSet("conformance", flag.ContinueOnError)
	device := fs.String("device", "AMD", "device short name")
	iters := fs.Int("iters", 20, "kernel launches per test")
	seed := fs.Uint64("seed", 1, "random seed")
	fenceBug := fs.Bool("fence-bug", false, "inject the AMD Vulkan compiler defect")
	cohBug := fs.Bool("coherence-bug", false, "inject the Intel load-load defect")
	staleBug := fs.Bool("stale-cache-bug", false, "inject the Kepler stale-cache defect")
	if err := fs.Parse(args); err != nil {
		return err
	}
	study, err := core.NewStudy()
	if err != nil {
		return err
	}
	p := core.Platform{Device: *device}
	if *fenceBug {
		p.Driver = wgsl.DriverFenceDropping
	}
	if *cohBug {
		p.Bugs.CoherenceRR = true
		p.Bugs.CoherenceRRProb = 0.4
		p.Bugs.CoherenceRRPressure = 2
	}
	if *staleBug {
		p.Bugs.StaleCache = true
	}
	env, err := envByName("pte", 16, 32)
	if err != nil {
		return err
	}
	rep, err := study.CheckConformance(p, env, *iters, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("conformance run on %s (driver: %v)\n\n", *device, p.Driver)
	for _, f := range rep.Findings {
		status := "ok"
		if f.Violations > 0 {
			status = fmt.Sprintf("VIOLATED %d/%d (%.4g/s)", f.Violations, f.Instances, f.ViolationRate)
		}
		fmt.Printf("  %-22s %s\n", f.Test, status)
		if f.Violations > 0 {
			fmt.Printf("    outcome: %s\n    cycle:   %s\n", f.Outcome, f.Explanation)
		}
	}
	if buggy := rep.Buggy(); len(buggy) > 0 {
		fmt.Printf("\n%d conformance test(s) FAILED — the platform violates its MCS\n", len(buggy))
	} else {
		fmt.Println("\nall conformance tests passed")
	}
	return nil
}

// faultFlags is the shared -faults/-fault-rate/-watchdog/-loss-after
// flag group of the campaign and tune subcommands.
type faultFlags struct {
	enable    *bool
	rate      *float64
	watchdog  *int64
	lossAfter *int
}

// addFaultFlags registers the fault-injection flags on fs.
func addFaultFlags(fs *flag.FlagSet) *faultFlags {
	return &faultFlags{
		enable:    fs.Bool("faults", false, "inject deterministic device-stack faults and enable the circuit breaker"),
		rate:      fs.Float64("fault-rate", 0.05, "per-launch probability of each injected fault kind (with -faults)"),
		watchdog:  fs.Int64("watchdog", 0, "kernel watchdog deadline in simulated ticks (0: default bound)"),
		lossAfter: fs.Int("loss-after", 0, "permanently lose a device after N injected faults (0: never; with -faults)"),
	}
}

// validate rejects nonsensical fault parameters at flag-check time.
func (ff *faultFlags) validate() error {
	if *ff.rate < 0 || *ff.rate > 1 {
		return fmt.Errorf("-fault-rate %v out of range [0, 1]", *ff.rate)
	}
	if *ff.lossAfter < 0 {
		return fmt.Errorf("-loss-after must be non-negative")
	}
	return nil
}

// model builds the fault model the flags select, seeding the fault
// stream from the campaign seed. Without -faults it is the zero model
// (plus any explicit watchdog), which injects nothing.
func (ff *faultFlags) model(seed uint64) gpu.FaultModel {
	var fm gpu.FaultModel
	if *ff.enable {
		fm = gpu.UniformFaults(seed, *ff.rate)
		fm.LossAfter = *ff.lossAfter
	}
	fm.WatchdogTicks = *ff.watchdog
	return fm
}

// breaker returns circuit-breaker options: enabled with defaults
// exactly when fault injection is on.
func (ff *faultFlags) breaker() *sched.BreakerOptions {
	if !*ff.enable {
		return nil
	}
	return &sched.BreakerOptions{}
}

// cancelFlags is the shared -deadline/-cell-timeout flag group of the
// campaign and tune subcommands.
type cancelFlags struct {
	deadline    *time.Duration
	cellTimeout *time.Duration
}

// addCancelFlags registers the cancellation-budget flags on fs.
func addCancelFlags(fs *flag.FlagSet) *cancelFlags {
	return &cancelFlags{
		deadline: fs.Duration("deadline", 0,
			"wall-clock budget for the whole run; expiry drains gracefully (checkpoint flushed, exit 130, resumable)"),
		cellTimeout: fs.Duration("cell-timeout", 0,
			"bound on each cell attempt; expiry fails that cell only, the run continues"),
	}
}

// apply derives the run context from -deadline; the returned cancel
// must be deferred.
func (cf *cancelFlags) apply(ctx context.Context) (context.Context, context.CancelFunc) {
	if *cf.deadline > 0 {
		return context.WithTimeout(ctx, *cf.deadline)
	}
	return context.WithCancel(ctx)
}

// storageFlags is the shared durability flag group of the campaign and
// tune subcommands.
type storageFlags struct {
	fsyncEvery *int
}

// addStorageFlags registers the checkpoint-durability flags on fs.
func addStorageFlags(fs *flag.FlagSet) *storageFlags {
	return &storageFlags{
		fsyncEvery: fs.Int("fsync-every", 0,
			"fsync the checkpoint after every N recorded cells (0: default bounded-loss policy; negative: only at drain and close)"),
	}
}

// profileFlags is the shared -cpuprofile/-memprofile flag group of the
// long-running campaign and tune subcommands.
type profileFlags struct {
	cpu *string
	mem *string
}

// addProfileFlags registers the pprof profiling flags on fs.
func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	return &profileFlags{
		cpu: fs.String("cpuprofile", "", "write a pprof CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a pprof heap profile to this file on exit"),
	}
}

// start begins CPU profiling when requested and returns a stop function
// to defer. stop finishes the CPU profile and writes the heap profile;
// it runs on every exit path, so profiles are captured even when a run
// completes degraded (partial-failure exit). Both profiles are
// published atomically — the CPU profile streams into a temp file that
// is fsynced and renamed into place only once complete, and the heap
// profile goes through diskio.WriteAtomic — so a crash mid-write never
// leaves a truncated profile at the requested path.
func (pf *profileFlags) start() (stop func(), err error) {
	fsys := diskio.OS{}
	var cpuFile diskio.File
	cpuPath, memPath := *pf.cpu, *pf.mem
	if cpuPath != "" {
		cpuFile, err = diskio.Create(fsys, cpuPath+".tmp")
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			fsys.Remove(cpuPath + ".tmp")
			return nil, err
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			err := cpuFile.Sync()
			if cerr := cpuFile.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = fsys.Rename(cpuPath+".tmp", cpuPath)
			}
			if err == nil {
				err = fsys.SyncDir(filepath.Dir(cpuPath))
			}
			if err != nil {
				fsys.Remove(cpuPath + ".tmp")
				fmt.Fprintf(os.Stderr, "mcmutants: cpuprofile: %v\n", err)
			}
		}
		if memPath == "" {
			return
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := diskio.WriteAtomic(fsys, memPath, pprof.WriteHeapProfile); err != nil {
			fmt.Fprintf(os.Stderr, "mcmutants: memprofile: %v\n", err)
		}
	}, nil
}

// resolveDevices expands and validates a -devices list: empty selects
// the whole Table 3 fleet; an unknown name is a usage error, caught
// before any campaign work begins.
func resolveDevices(list string) ([]string, error) {
	if list == "" {
		var names []string
		for _, prof := range gpu.Profiles() {
			names = append(names, prof.ShortName)
		}
		return names, nil
	}
	var names []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if _, ok := gpu.ProfileByName(name); !ok {
			return nil, fmt.Errorf("unknown device %q", name)
		}
		names = append(names, name)
	}
	return names, nil
}

// probeOutputPaths verifies each requested output destination (report,
// dataset, profile) is writable before any long-running work begins: a
// path that cannot be created must fail the run up front with exit 1,
// not hours later when the artifact is finally published. The probe
// creates and removes a temp sibling, the same directory the atomic
// writers will use, without touching any existing artifact at the path.
func probeOutputPaths(paths ...string) error {
	fsys := diskio.OS{}
	for _, path := range paths {
		if path == "" {
			continue
		}
		f, err := diskio.Create(fsys, path+".probe")
		if err != nil {
			return fmt.Errorf("output path not writable: %w", err)
		}
		f.Close()
		if err := fsys.Remove(path + ".probe"); err != nil {
			return err
		}
	}
	return nil
}

// campaignVerdict maps a completed campaign's degradations to its exit
// state: nil when fully healthy, partialFailure (exit 2) when cells
// produced no data or the checkpoint degraded to in-memory on a
// persistent storage failure.
func campaignVerdict(failedCells, quarantined int, storageDegraded bool, storageErr string) error {
	var parts []string
	if failedCells > 0 {
		parts = append(parts, fmt.Sprintf("%d cell(s) produced no data (%d quarantined)", failedCells, quarantined))
	}
	if storageDegraded {
		parts = append(parts, fmt.Sprintf("checkpoint storage degraded (%s), results not durably checkpointed", storageErr))
	}
	if len(parts) == 0 {
		return nil
	}
	return &partialFailure{"campaign degraded: " + strings.Join(parts, "; ")}
}

// writeCampaignArtifact publishes the campaign report atomically
// through the canonical core encoding, so `campaign -out` files and
// serve job reports for the same spec are byte-identical.
func writeCampaignArtifact(path string, a *core.CampaignArtifact) error {
	return a.WriteAtomic(nil, path)
}

func cmdCampaign(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	kind := fs.String("kind", "conformance", "campaign kind: conformance or evaluate")
	out := fs.String("out", "", "write a machine-readable JSON report to this path (atomic)")
	devices := fs.String("devices", "", "comma-separated device names (default: the Table 3 fleet)")
	envNames := fs.String("envs", "pte,site", "comma-separated environment presets")
	iters := fs.Int("iters", 10, "kernel launches per cell")
	seed := fs.Uint64("seed", 1, "campaign seed")
	parallel := fs.Int("parallel", 4, "scheduler workers (any count yields identical results)")
	checkpoint := fs.String("checkpoint", "", "checkpoint path for resumable campaigns")
	resume := fs.Bool("resume", false, "resume from the checkpoint, replaying completed cells")
	retries := fs.Int("retries", 0, "retries per cell on transient failures")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	fenceBug := fs.Bool("fence-bug", false, "inject the fence-dropping driver on every platform")
	ff := addFaultFlags(fs)
	cf := addCancelFlags(fs)
	pf := addProfileFlags(fs)
	sf := addStorageFlags(fs)
	df := addDistFlags(fs)
	chf := addCacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast: everything a flag can get wrong — kind, devices,
	// environment presets, fault parameters, output and profile paths —
	// is rejected here, to stderr with exit 1, before profiling starts,
	// the suite generates, or any campaign work begins.
	switch *kind {
	case "conformance", "evaluate":
	default:
		return fmt.Errorf("unknown campaign kind %q (conformance, evaluate)", *kind)
	}
	names, err := resolveDevices(*devices)
	if err != nil {
		return err
	}
	var envs []harness.Params
	var envList []string
	for _, name := range strings.Split(*envNames, ",") {
		name = strings.TrimSpace(name)
		env, err := envByName(name, 16, 32)
		if err != nil {
			return err
		}
		envs = append(envs, env)
		envList = append(envList, name)
	}
	if err := ff.validate(); err != nil {
		return err
	}
	if err := df.validate(); err != nil {
		return err
	}
	if err := probeOutputPaths(*out, *pf.cpu, *pf.mem); err != nil {
		return err
	}
	cache, err := chf.open()
	if err != nil {
		return err
	}
	defer cacheSummary(os.Stderr, cache)
	ctx, cancel := cf.apply(ctx)
	defer cancel()
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()
	study, err := core.NewStudy()
	if err != nil {
		return err
	}
	opts := core.CampaignOptions{
		Workers:        *parallel,
		Retries:        *retries,
		CellTimeout:    *cf.cellTimeout,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Collect:        *ff.enable,
		Breaker:        ff.breaker(),
		FsyncEvery:     *sf.fsyncEvery,
	}
	faultModel := ff.model(*seed)
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		opts.Report = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	// With -workers-addr the campaign coordinates `mcmutants work`
	// processes over HTTP instead of executing cells itself; the merged
	// report is byte-identical to a local run at any worker count.
	var hub *dist.Hub
	var distLogf func(string, ...any)
	if *df.addr != "" {
		var stopHub func()
		hub, stopHub, err = df.serveHub()
		if err != nil {
			return err
		}
		defer stopHub()
		if !*quiet {
			distLogf = func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "mcmutants: dist: "+format+"\n", a...)
			}
		}
	}
	ws := campaignWorkSpec(*kind, names, envList, *iters, *seed, *fenceBug, faultModel, *retries, *cf.cellTimeout)
	switch *kind {
	case "conformance":
		var platforms []core.Platform
		for _, name := range names {
			p := core.Platform{Device: name, Faults: faultModel}
			if *fenceBug {
				p.Driver = wgsl.DriverFenceDropping
			}
			platforms = append(platforms, p)
		}
		if hub != nil {
			desc, err := ws.Descriptor()
			if err != nil {
				return err
			}
			opts.Dist = df.options(hub, "conformance", desc, distLogf)
		}
		if cache != nil {
			salt, err := ws.CacheSalt()
			if err != nil {
				return err
			}
			opts.Cache = cache
			opts.CacheSalt = salt
		}
		reports, err := study.CheckFleetConformanceCtx(ctx, platforms, envs[0], *iters, *seed, opts)
		interrupted := errors.Is(err, sched.ErrInterrupted)
		if err != nil && !interrupted {
			return err
		}
		storageDegraded, storageErr := false, ""
		for _, rep := range reports {
			if rep.StorageDegraded {
				storageDegraded, storageErr = true, rep.StorageErr
			}
		}
		bad, failedCells, quarantined, pending := 0, 0, 0, 0
		for _, rep := range reports {
			buggy := rep.Buggy()
			bad += len(buggy)
			fmt.Printf("%-8s %d/%d conformance tests violated\n",
				rep.Platform.Device, len(buggy), len(rep.Findings))
			for _, f := range buggy {
				fmt.Printf("  %-22s %d/%d (%.4g/s)\n    outcome: %s\n    cycle:   %s\n",
					f.Test, f.Violations, f.Instances, f.ViolationRate, f.Outcome, f.Explanation)
			}
			for _, f := range rep.Failed() {
				failedCells++
				if f.Quarantined {
					quarantined++
				}
				fmt.Printf("  %-22s NO DATA: %s\n", f.Test, f.Error)
			}
			for _, f := range rep.Findings {
				if f.Interrupted {
					pending++
				}
			}
			for _, h := range rep.Health {
				if h.Quarantined > 0 || h.Open {
					state := "recovered"
					if h.Open {
						state = "still open"
					}
					fmt.Printf("  breaker: %d/%d cells quarantined (%s)\n", h.Quarantined, h.Cells, state)
				}
			}
		}
		if bad > 0 {
			fmt.Printf("\n%d violation(s) across the fleet\n", bad)
		} else if interrupted {
			fmt.Println("\nfleet conforms so far (run interrupted)")
		} else {
			fmt.Println("\nfleet conforms")
		}
		if storageDegraded {
			fmt.Fprintf(os.Stderr, "mcmutants: checkpoint storage degraded, finished in-memory: %s\n", storageErr)
		}
		if *out != "" {
			art := &core.CampaignArtifact{Kind: "conformance", Conformance: reports, StorageDegraded: storageDegraded}
			if err := writeCampaignArtifact(*out, art); err != nil {
				return err
			}
			fmt.Printf("wrote report to %s\n", *out)
		}
		if interrupted {
			msg := fmt.Sprintf("campaign interrupted: %d cell(s) pending", pending)
			if *checkpoint != "" {
				msg += fmt.Sprintf("; resume with -checkpoint %s -resume", *checkpoint)
			}
			return &interruptedRun{msg}
		}
		return campaignVerdict(failedCells, quarantined, storageDegraded, storageErr)
	case "evaluate":
		failedCells, quarantined := 0, 0
		storageDegraded, storageErr := false, ""
		var entries []core.EvaluateEntry
		publish := func() error {
			if *out == "" {
				return nil
			}
			art := &core.CampaignArtifact{Kind: "evaluate", Evaluate: entries, StorageDegraded: storageDegraded}
			if err := writeCampaignArtifact(*out, art); err != nil {
				return err
			}
			fmt.Printf("wrote report to %s\n", *out)
			return nil
		}
		for _, name := range names {
			p := core.Platform{Device: name, Faults: faultModel}
			if *fenceBug {
				p.Driver = wgsl.DriverFenceDropping
			}
			devOpts := opts
			if devOpts.CheckpointPath != "" {
				// One campaign per device; keep their checkpoints apart.
				devOpts.CheckpointPath = fmt.Sprintf("%s.%s", opts.CheckpointPath, p.Device)
			}
			// The per-device work spec: dist advertises it so a worker's
			// locally-planned unit manifest matches the advertised
			// campaign exactly, and the cache salts with it so local and
			// worker-side keys for this device's cells agree.
			wsDev := ws
			wsDev.Devices = []string{p.Device}
			if hub != nil {
				// One coordinator per device, each advertising the
				// single-device descriptor.
				desc, err := wsDev.Descriptor()
				if err != nil {
					return err
				}
				devOpts.Dist = df.options(hub, "evaluate."+p.Device, desc, distLogf)
			}
			if cache != nil {
				salt, err := wsDev.CacheSalt()
				if err != nil {
					return err
				}
				devOpts.Cache = cache
				devOpts.CacheSalt = salt
			}
			score, err := study.EvaluateEnvironmentsCtx(ctx, p, envs, *iters, *seed, devOpts)
			interrupted := errors.Is(err, sched.ErrInterrupted)
			if err != nil && !interrupted {
				return err
			}
			if score.StorageDegraded {
				storageDegraded, storageErr = true, score.StorageErr
				fmt.Fprintf(os.Stderr, "mcmutants: checkpoint storage degraded, finished in-memory: %s\n", score.StorageErr)
			}
			entries = append(entries, core.EvaluateEntry{Device: p.Device, Score: score})
			note := ""
			if interrupted {
				note = " [interrupted, partial]"
			}
			fmt.Printf("%-8s mutation score %.1f%% (%d/%d killed across %d environments), avg death rate %.4g/s%s\n",
				p.Device, 100*score.Score(), score.Killed, score.Total, len(envs), score.AvgDeathRate, note)
			if len(score.Failures) > 0 {
				nq := 0
				for _, cf := range score.Failures {
					if cf.Quarantined {
						nq++
					}
				}
				failedCells += len(score.Failures)
				quarantined += nq
				fmt.Printf("  %d cell(s) produced no data (%d quarantined)\n", len(score.Failures), nq)
			}
			if interrupted {
				if err := publish(); err != nil {
					return err
				}
				msg := "campaign interrupted: per-device evaluation incomplete"
				if opts.CheckpointPath != "" {
					msg += fmt.Sprintf("; resume with -checkpoint %s -resume", opts.CheckpointPath)
				}
				return &interruptedRun{msg}
			}
		}
		if err := publish(); err != nil {
			return err
		}
		return campaignVerdict(failedCells, quarantined, storageDegraded, storageErr)
	default:
		return fmt.Errorf("unknown campaign kind %q (conformance, evaluate)", *kind)
	}
}

func cmdTune(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	out := fs.String("out", "tuning.json", "output dataset path")
	envs := fs.Int("envs", 12, "random environments per tuned family")
	siteIters := fs.Int("site-iters", 50, "SITE iterations per test")
	pteIters := fs.Int("pte-iters", 8, "PTE iterations per test")
	paperScale := fs.Bool("paper-scale", false, "use the paper's full environment sizes (slow)")
	devices := fs.String("devices", "", "comma-separated device names (default: the Table 3 fleet)")
	seed := fs.Uint64("seed", 2023, "random seed")
	quiet := fs.Bool("quiet", false, "suppress progress output")
	parallel := fs.Int("parallel", 1, "scheduler workers (any count yields the identical dataset)")
	checkpoint := fs.String("checkpoint", "", "checkpoint path (default <out>.ckpt when -resume is set)")
	resume := fs.Bool("resume", false, "resume from the checkpoint, replaying completed cells")
	retries := fs.Int("retries", 0, "retries per cell on transient failures")
	ff := addFaultFlags(fs)
	cf := addCancelFlags(fs)
	pf := addProfileFlags(fs)
	sf := addStorageFlags(fs)
	chf := addCacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Fail fast on bad flags — before profiling, suite generation or
	// any tuning work (see the same block in cmdCampaign).
	if *envs <= 0 || *siteIters <= 0 || *pteIters <= 0 {
		return fmt.Errorf("-envs, -site-iters and -pte-iters must be positive")
	}
	var tuneDevices []string
	if *devices != "" {
		devs, err := resolveDevices(*devices)
		if err != nil {
			return err
		}
		tuneDevices = devs
	}
	if err := ff.validate(); err != nil {
		return err
	}
	if err := probeOutputPaths(*out, *pf.cpu, *pf.mem); err != nil {
		return err
	}
	cache, err := chf.open()
	if err != nil {
		return err
	}
	defer cacheSummary(os.Stderr, cache)
	ctx, cancel := cf.apply(ctx)
	defer cancel()
	stopProf, err := pf.start()
	if err != nil {
		return err
	}
	defer stopProf()
	suite, err := mutation.Generate()
	if err != nil {
		return err
	}
	cfg := tuning.SmallConfig()
	cfg.Environments = *envs
	cfg.SITEIterations = *siteIters
	cfg.PTEIterations = *pteIters
	cfg.Seed = *seed
	if *paperScale {
		cfg = tuning.PaperConfig()
		cfg.Seed = *seed
	}
	if len(tuneDevices) > 0 {
		cfg.Devices = tuneDevices
	}
	if fm := ff.model(*seed); fm.Enabled() || fm.WatchdogTicks > 0 {
		cfg.Faults = &fm
	}
	opts := tuning.RunOptions{
		Workers:        *parallel,
		CheckpointPath: *checkpoint,
		Resume:         *resume,
		Retries:        *retries,
		CellTimeout:    *cf.cellTimeout,
		Breaker:        ff.breaker(),
		FsyncEvery:     *sf.fsyncEvery,
	}
	if cache != nil {
		opts.Cache = cache
	}
	if opts.Resume && opts.CheckpointPath == "" {
		opts.CheckpointPath = *out + ".ckpt"
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
		opts.Report = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	ds, err := tuning.RunCampaignCtx(ctx, cfg, suite.Mutants, opts)
	if err != nil {
		return err
	}
	if err := ds.SaveAtomic(nil, *out); err != nil {
		return err
	}
	if ds.StorageDegraded {
		fmt.Fprintf(os.Stderr, "mcmutants: checkpoint storage degraded, finished in-memory: %s\n", ds.StorageErr)
	}
	if ds.Interrupted {
		fmt.Printf("wrote %d records to %s (run interrupted; dataset partial)\n", len(ds.Records), *out)
	} else {
		fmt.Printf("wrote %d records to %s\n", len(ds.Records), *out)
	}
	nq := 0
	for _, d := range ds.Dropped {
		if d.Quarantined {
			nq++
		}
	}
	if len(ds.Dropped) > 0 {
		fmt.Printf("%d cell(s) dropped (%d quarantined) — recorded in the dataset's dropped list\n",
			len(ds.Dropped), nq)
	}
	if ds.Interrupted {
		// The partial dataset is written and every completed cell is in
		// the checkpoint; a resumed run replays them and finishes the
		// rest, producing a byte-identical final dataset. Skip the Fig. 5
		// analysis — it would summarize an incomplete grid.
		msg := "tuning run interrupted: dataset is partial"
		if opts.CheckpointPath != "" {
			msg += fmt.Sprintf("; resume with -checkpoint %s -resume", opts.CheckpointPath)
		}
		return &interruptedRun{msg}
	}
	fmt.Println()
	fmt.Print(report.Fig5(ds))
	var parts []string
	if len(ds.Dropped) > 0 {
		parts = append(parts, fmt.Sprintf("%d cell(s) dropped (%d quarantined)", len(ds.Dropped), nq))
	}
	if ds.StorageDegraded {
		parts = append(parts, fmt.Sprintf("checkpoint storage degraded (%s), results not durably checkpointed", ds.StorageErr))
	}
	if len(parts) > 0 {
		return &partialFailure{"tuning run degraded: " + strings.Join(parts, "; ")}
	}
	return nil
}

// cmdServe runs the campaign service: an HTTP server that accepts
// campaign and tuning specs as JSON jobs, executes them on a runner
// pool with durable checkpoints under -state, streams progress over
// SSE and exposes Prometheus metrics. SIGINT/SIGTERM drains
// gracefully — running jobs stop at the next cell boundary and are
// re-queued durably for the next boot — and exits 130, matching the
// campaign and tune verbs.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (port 0 picks a free port, printed on stdout)")
	state := fs.String("state", "mcmutants-state", "state directory for job records, checkpoints and reports")
	runners := fs.Int("runners", 2, "jobs executing concurrently")
	parallel := fs.Int("parallel", 4, "scheduler workers per job (any count yields identical artifacts)")
	queueDepth := fs.Int("queue", 64, "bound on queued jobs; submissions beyond it get 429")
	perClient := fs.Int("per-client", 4, "per-client in-flight job cap (X-API-Key or remote address)")
	quiet := fs.Bool("quiet", false, "suppress server log lines")
	enableDist := fs.Bool("dist", false, "accept distributed jobs and serve the /dist/v1/ coordination API to mcmutants work processes")
	distLeaseTTL := fs.Duration("dist-lease-ttl", 10*time.Second, "worker lease deadline for distributed jobs (with -dist)")
	defWall := fs.Duration("default-wall-deadline", 0, "wall-clock budget applied to jobs that request none (0 = unbounded)")
	maxWall := fs.Duration("max-wall-deadline", 0, "cap on a job's requested wall_deadline (0 = uncapped)")
	defCell := fs.Duration("default-cell-timeout", 0, "per-cell-attempt timeout applied to jobs that request none (0 = unbounded)")
	maxCell := fs.Duration("max-cell-timeout", 0, "cap on a job's requested cell_timeout (0 = uncapped)")
	defStall := fs.Duration("default-stall-timeout", 0, "progress-stall budget applied to jobs that request none (0 = no stall watchdog)")
	maxStall := fs.Duration("max-stall-timeout", 0, "cap on a job's requested stall_timeout (0 = uncapped)")
	poisonBoots := fs.Int("poison-boots", 3, "boots that may find a job running before it is quarantined as poisoned (-1 disables)")
	memSoftMB := fs.Int64("mem-soft-mb", 0, "soft heap watermark in MiB: pause queue drain and shed submissions with 429 (0 disables)")
	memHardMB := fs.Int64("mem-hard-mb", 0, "hard heap watermark in MiB: additionally shed the newest running jobs (0 disables)")
	sf := addStorageFlags(fs)
	chf := addCacheFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *distLeaseTTL <= 0 {
		return fmt.Errorf("-dist-lease-ttl must be positive")
	}
	if *chf.maxMB < 0 {
		return fmt.Errorf("-cache-max-mb must be >= 0")
	}
	for name, d := range map[string]time.Duration{
		"-default-wall-deadline": *defWall, "-max-wall-deadline": *maxWall,
		"-default-cell-timeout": *defCell, "-max-cell-timeout": *maxCell,
		"-default-stall-timeout": *defStall, "-max-stall-timeout": *maxStall,
	} {
		if d < 0 {
			return fmt.Errorf("%s must be >= 0", name)
		}
	}
	if *memSoftMB < 0 || *memHardMB < 0 {
		return fmt.Errorf("-mem-soft-mb and -mem-hard-mb must be >= 0")
	}
	if *poisonBoots == 0 {
		return fmt.Errorf("-poison-boots must be positive (or -1 to disable quarantine)")
	}
	cfg := serve.Config{
		StateDir:      *state,
		Runners:       *runners,
		JobWorkers:    *parallel,
		QueueDepth:    *queueDepth,
		PerClient:     *perClient,
		FsyncEvery:    *sf.fsyncEvery,
		EnableDist:    *enableDist,
		DistLeaseTTL:  *distLeaseTTL,
		CacheDir:      *chf.dir,
		CacheMaxBytes: *chf.maxMB << 20,
		Budgets: guard.Limits{
			DefaultWallDeadline: *defWall,
			MaxWallDeadline:     *maxWall,
			DefaultCellTimeout:  *defCell,
			MaxCellTimeout:      *maxCell,
			DefaultStallTimeout: *defStall,
			MaxStallTimeout:     *maxStall,
		},
		PoisonBoots:  *poisonBoots,
		MemSoftBytes: uint64(*memSoftMB) << 20,
		MemHardBytes: uint64(*memHardMB) << 20,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "mcmutants: "+format+"\n", args...)
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The bound address goes to stdout so scripts using port 0 can
	// learn the port (everything else the server prints is stderr).
	fmt.Printf("serving on http://%s (state %s)\n", ln.Addr(), *state)
	if err := srv.Run(ctx, ln); err != nil {
		return err
	}
	if ctx.Err() != nil {
		return &interruptedRun{"serve: drained and shut down"}
	}
	return nil
}

func loadDataset(path string) (*tuning.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return tuning.Load(f)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	action := fs.String("action", "mutation-score", "mutation-score, merge or correlation")
	statsPath := fs.String("stats", "tuning.json", "dataset path (mutation-score, merge)")
	family := fs.String("family", "PTE", "environment family")
	rep := fs.Float64("rep", 95, "reproducibility target in percent")
	budget := fs.Float64("budget", 1, "per-test time budget in seconds")
	envs := fs.Int("envs", 24, "environments for the correlation study")
	iters := fs.Int("iters", 4, "iterations per environment (correlation)")
	seed := fs.Uint64("seed", 2023, "random seed (correlation)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *action {
	case "mutation-score":
		ds, err := loadDataset(*statsPath)
		if err != nil {
			return err
		}
		fmt.Print(report.Fig5(ds))
		return nil
	case "merge":
		ds, err := loadDataset(*statsPath)
		if err != nil {
			return err
		}
		target := *rep / 100
		tables := ds.RateTables(*family)
		points, err := confidence.BudgetSweep(tables, ds.Devices(),
			[]float64{target}, []float64{*budget})
		if err != nil {
			return err
		}
		fmt.Print(report.Fig6(points))
		return nil
	case "merge-sweep":
		ds, err := loadDataset(*statsPath)
		if err != nil {
			return err
		}
		tables := ds.RateTables(*family)
		points, err := confidence.BudgetSweep(tables, ds.Devices(),
			[]float64{0.95, 0.99999}, confidence.PowersOfTwoBudgets(-10, 6))
		if err != nil {
			return err
		}
		fmt.Print(report.Fig6(points))
		return nil
	case "correlation":
		suite, err := mutation.Generate()
		if err != nil {
			return err
		}
		cfg := tuning.SmallCorrelationConfig()
		cfg.Environments = *envs
		cfg.Iterations = *iters
		cfg.Seed = *seed
		var results []*tuning.CorrelationResult
		for _, c := range tuning.PaperBugCases() {
			fmt.Fprintf(os.Stderr, "correlating %s (%d environments)...\n", c.Name, cfg.Environments)
			r, err := tuning.Correlate(c, suite, cfg)
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		fmt.Print(report.Table4(results))
		return nil
	default:
		return fmt.Errorf("unknown action %q", *action)
	}
}

func cmdCTS(args []string) error {
	fs := flag.NewFlagSet("cts", flag.ContinueOnError)
	statsPath := fs.String("stats", "tuning.json", "dataset path")
	family := fs.String("family", "PTE", "environment family")
	rep := fs.Float64("rep", 99.999, "reproducibility target in percent")
	budget := fs.Float64("budget", 1, "per-test time budget in seconds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*statsPath)
	if err != nil {
		return err
	}
	plan, err := core.CurateCTS(ds, *family, *rep/100, *budget)
	if err != nil {
		return err
	}
	fmt.Printf("CTS plan: family=%s target=%.5g%% budget=%.4gs/test\n\n",
		plan.Family, 100*plan.Target, plan.Budget)
	for _, e := range plan.Entries {
		mark := " "
		if e.Reproducible {
			mark = "*"
		}
		fmt.Printf("  %s %-22s env=%-12s devices=%d/%d min-rate=%.4g/s\n",
			mark, e.Test, e.Env, e.DevicesMeeting, e.TotalDevices, e.MinPositiveRate)
	}
	fmt.Printf("\nmutation score: %.1f%%\n", 100*plan.MutationScore)
	fmt.Printf("total reproducibility: %.4f%%\n", 100*plan.TotalReproducibility)
	fmt.Printf("total budget: %.4gs\n", plan.TotalBudgetSeconds)
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	testName := fs.String("test", "MP", "test name from the suite")
	device := fs.String("device", "AMD", "device short name")
	explore := fs.Int("explore", 16, "random exploration rounds")
	refine := fs.Int("refine", 16, "hill-climbing rounds")
	iters := fs.Int("iters", 4, "kernel launches per candidate")
	site := fs.Bool("site", false, "search single-instance environments instead of PTE")
	seed := fs.Uint64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := mutation.Generate()
	if err != nil {
		return err
	}
	test, ok := suite.ByName(*testName)
	if !ok {
		return fmt.Errorf("unknown test %q", *testName)
	}
	cfg := tuning.DefaultOptimizeConfig()
	cfg.ExploreRounds = *explore
	cfg.RefineRounds = *refine
	cfg.Iterations = *iters
	cfg.Parallel = !*site
	cfg.Seed = *seed
	best, err := tuning.Optimize(test, *device, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("optimized environment for %s on %s (%d candidates):\n", *testName, *device, best.Evaluated)
	fmt.Printf("  rate: %.4g kills/s (%d kills during evaluation)\n", best.Rate, best.Kills)
	fmt.Printf("  env: %+v\n", best.Env)
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	testName := fs.String("test", "MP", "test name from the suite")
	device := fs.String("device", "AMD", "device short name")
	seed := fs.Uint64("seed", 1, "random seed")
	limit := fs.Int("limit", 40, "maximum events to print")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite, err := mutation.Generate()
	if err != nil {
		return err
	}
	test, ok := suite.ByName(*testName)
	if !ok {
		return fmt.Errorf("unknown test %q", *testName)
	}
	prof, ok := gpu.ProfileByName(*device)
	if !ok {
		return fmt.Errorf("unknown device %q", *device)
	}
	dev, err := gpu.NewDevice(prof, gpu.Bugs{})
	if err != nil {
		return err
	}
	// A single bare instance: one thread per role, no stress, so the
	// trace stays readable.
	roles := len(test.Threads)
	env := harness.SITEBaseline()
	env.MaxWorkgroups = roles
	spec, err := harness.BuildKernel(test, &env, xrand.New(*seed))
	if err != nil {
		return err
	}
	res, trace, err := dev.RunTraced(*spec, xrand.New(*seed))
	if err != nil {
		return err
	}
	fmt.Printf("traced %s on %s: %d events over %d ticks\n\n",
		test.Name, prof.ShortName, len(trace), res.Stats.Ticks)
	for i, e := range trace {
		if i == *limit {
			fmt.Printf("... %d more events\n", len(trace)-*limit)
			break
		}
		fmt.Println(" ", e)
	}
	if err := gpu.VerifyTrace(*spec, trace); err != nil {
		fmt.Printf("\ntrace verification FAILED: %v\n", err)
	} else {
		fmt.Println("\ntrace verification passed")
	}
	return nil
}
