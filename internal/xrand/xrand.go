// Package xrand provides a deterministic, splittable pseudo-random number
// generator used throughout the simulator and the testing harness.
//
// All randomness in this repository flows through xrand so that a single
// seed reproduces an entire experiment: the same environments are
// generated, the same schedules are chosen, and the same weak behaviors
// are observed. The generator is xoshiro256** seeded via SplitMix64,
// following the reference constructions by Blackman and Vigna.
//
// The zero value is not usable; construct generators with New or Split.
package xrand

import "math/bits"

// Rand is a xoshiro256** generator. It is not safe for concurrent use;
// use Split to derive independent generators for concurrent workers.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, which spreads
// low-entropy seeds (0, 1, 2, ...) across the full state space.
func New(seed uint64) *Rand {
	var r Rand
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return &r
}

// Split derives a new generator from r. The derived generator's stream is
// independent of r's subsequent output for all practical purposes: the
// child state is produced by drawing from r and remixing through
// SplitMix64 with a distinct stream constant.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// splitmix64 is the SplitMix64 finalizer used by both New and DeriveSeed.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// DeriveSeed deterministically derives a child seed from a root seed and
// a path of labels. Unlike Split, which consumes state from a live
// generator and therefore depends on draw order, DeriveSeed is a pure
// function of (seed, path): any party that knows a campaign's seed and a
// cell's identity computes the same child seed regardless of the order —
// or the goroutine — in which cells execute. This is the splittable seed
// function the campaign scheduler builds its determinism-under-
// parallelism guarantee on.
//
// Each path component is absorbed byte-by-byte into the running state
// through SplitMix64, with a component separator that distinguishes
// ("ab", "c") from ("a", "bc").
func DeriveSeed(seed uint64, path ...string) uint64 {
	h := splitmix64(seed + 0x9e3779b97f4a7c15)
	for _, comp := range path {
		for i := 0; i < len(comp); i++ {
			h = splitmix64(h ^ uint64(comp[i]))
		}
		// Separator: absorb the component length under a distinct
		// stream constant so component boundaries matter.
		h = splitmix64(h ^ (uint64(len(comp)) + 0xa0761d6478bd642f))
	}
	return h
}

// NewFromPath is New(DeriveSeed(seed, path...)): an order-independent
// generator for one campaign cell.
func NewFromPath(seed uint64, path ...string) *Rand {
	return New(DeriveSeed(seed, path...))
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniformly distributed int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniformly distributed uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n called with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// IntBetween returns a uniformly distributed int in [lo, hi]. It panics
// if hi < lo.
func (r *Rand) IntBetween(lo, hi int) int {
	if hi < lo {
		panic("xrand: IntBetween called with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Perm returns a random permutation of [0, n) as a slice, using the
// Fisher-Yates shuffle.
func (r *Rand) Perm(n int) []int {
	return r.PermInto(nil, n)
}

// PermInto is Perm writing into buf, which is grown as needed and
// returned re-sliced to length n. It consumes exactly the same draws as
// Perm — for equal generator states, PermInto(buf, n) and Perm(n) hold
// identical permutations — so hot paths can reuse one buffer across
// calls without perturbing any downstream randomness.
func (r *Rand) PermInto(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	p := buf[:n]
	for i := range p {
		p[i] = i
	}
	// Fisher-Yates inlined (draw-identical to Shuffle) so no closure
	// escapes to the heap.
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, as in
// math/rand.Shuffle.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns a sample from a geometric distribution with success
// probability p: the number of failures before the first success. For
// p <= 0 it returns maxTrials; samples are capped at maxTrials to keep
// simulation steps bounded.
func (r *Rand) Geometric(p float64, maxTrials int) int {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		return maxTrials
	}
	n := 0
	for n < maxTrials && !r.Bool(p) {
		n++
	}
	return n
}

// GCD returns the greatest common divisor of a and b.
func GCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Coprime returns a value p in [2, n) with gcd(p, n) == 1, chosen
// uniformly among candidates. For n <= 2 it returns 1 (the identity
// permutation multiplier). The result is the multiplier for the parallel
// permutation function v -> (v*p) mod n used by the PTE thread/instance
// assignment (Section 4.1 of the paper); the paper notes simple mappings
// such as v -> v+1 are ineffective, so candidates near 1 and n-1 are
// excluded when enough candidates exist.
func (r *Rand) Coprime(n uint64) uint64 {
	if n <= 2 {
		return 1
	}
	// Rejection sample; density of coprimes is at least ~1/log log n,
	// so this terminates quickly. Cap attempts for safety.
	lo, hi := uint64(2), n-1
	if n > 8 {
		lo, hi = 3, n-2 // avoid near-identity multipliers
	}
	for i := 0; i < 256; i++ {
		p := lo + r.Uint64n(hi-lo)
		if GCD(p, n) == 1 {
			return p
		}
	}
	// Fall back to a linear scan (n has many prime factors).
	for p := lo; p < hi; p++ {
		if GCD(p, n) == 1 {
			return p
		}
	}
	return 1
}
