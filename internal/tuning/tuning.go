// Package tuning orchestrates the paper's evaluation (Sec. 5): random
// testing environments are generated per family (SITE Baseline, SITE,
// PTE Baseline, PTE), every mutant is executed in every environment on
// every device, and the resulting dataset yields the mutation scores
// and mutant death rates of Fig. 5, the rate tables Algorithm 1 merges
// for Fig. 6, and the correlation study of Table 4.
//
// Datasets serialize to JSON, mirroring the artifact's per-device
// result files.
package tuning

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/confidence"
	"repro/internal/gpu"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// Family enumerates the four environment families of Sec. 5.1.
type Family int

const (
	// SITEBaseline is a single test instance with no stress.
	SITEBaseline Family = iota
	// SITE is single-instance with randomly tuned stress (prior work).
	SITE
	// PTEBaseline is parallel instances with no stress.
	PTEBaseline
	// PTE is parallel instances with randomly tuned stress.
	PTE
)

// String names the family as in the paper.
func (f Family) String() string {
	switch f {
	case SITEBaseline:
		return "SITE-Baseline"
	case SITE:
		return "SITE"
	case PTEBaseline:
		return "PTE-Baseline"
	case PTE:
		return "PTE"
	default:
		return fmt.Sprintf("Family(%d)", int(f))
	}
}

// Parallel reports whether the family runs parallel instances.
func (f Family) Parallel() bool { return f == PTEBaseline || f == PTE }

// Baseline reports whether the family is stress-free.
func (f Family) Baseline() bool { return f == SITEBaseline || f == PTEBaseline }

// Families returns all four families in paper order.
func Families() []Family { return []Family{SITEBaseline, SITE, PTEBaseline, PTE} }

// FamilyByName resolves a family name.
func FamilyByName(name string) (Family, bool) {
	for _, f := range Families() {
		if f.String() == name {
			return f, true
		}
	}
	return 0, false
}

// Config sizes a tuning run. The paper's run (PaperConfig) uses 150
// environments with 300 SITE / 100 PTE iterations; SmallConfig scales
// everything down for simulation-backed tests.
type Config struct {
	// Environments is the number of random environments per tuned
	// family (baselines always use exactly one, their preset).
	Environments int
	// SITEIterations and PTEIterations are kernel launches per (env,
	// test, device). The paper runs SITE longer to give it more
	// opportunities (Sec. 5.1).
	SITEIterations int
	PTEIterations  int
	// PTEWorkgroups and PTEWorkgroupSize size the PTE Baseline preset.
	PTEWorkgroups    int
	PTEWorkgroupSize int
	// Scale bounds random environment generation.
	Scale harness.Scale
	// Devices lists profile short names; empty means the four study
	// devices of Table 3.
	Devices []string
	// Seed drives all randomness.
	Seed uint64
}

// PaperConfig mirrors Sec. 5.1's sizes. Running it under simulation
// takes hours; it exists for the CLI's full mode.
func PaperConfig() Config {
	return Config{
		Environments:   150,
		SITEIterations: 300,
		PTEIterations:  100,
		PTEWorkgroups:  1024, PTEWorkgroupSize: 256,
		Scale: harness.PaperScale(),
		Seed:  2023,
	}
}

// SmallConfig is a scaled-down run preserving the qualitative shape;
// tests and benchmarks use it.
func SmallConfig() Config {
	return Config{
		Environments:   6,
		SITEIterations: 20,
		PTEIterations:  4,
		PTEWorkgroups:  8, PTEWorkgroupSize: 16,
		Scale: harness.DefaultScale(),
		Seed:  2023,
	}
}

func (c *Config) devices() []string {
	if len(c.Devices) > 0 {
		return c.Devices
	}
	names := make([]string, 0, 4)
	for _, p := range gpu.Profiles() {
		names = append(names, p.ShortName)
	}
	return names
}

func (c *Config) iterations(f Family) int {
	if f.Parallel() {
		return c.PTEIterations
	}
	return c.SITEIterations
}

// Record is one (environment, device, test) measurement.
type Record struct {
	Family      string         `json:"family"`
	EnvID       string         `json:"env_id"`
	Env         harness.Params `json:"env"`
	Device      string         `json:"device"`
	Test        string         `json:"test"`
	Mutator     string         `json:"mutator"`
	IsMutant    bool           `json:"is_mutant"`
	Iterations  int            `json:"iterations"`
	Instances   int            `json:"instances"`
	TargetCount int            `json:"target_count"`
	Violations  int            `json:"violations"`
	SimSeconds  float64        `json:"sim_seconds"`
	TargetRate  float64        `json:"target_rate"`
}

// Dataset is a tuning run's full results.
type Dataset struct {
	Config  Config   `json:"config"`
	Records []Record `json:"records"`
}

// Save writes the dataset as JSON.
func (ds *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(ds)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var ds Dataset
	if err := json.NewDecoder(r).Decode(&ds); err != nil {
		return nil, fmt.Errorf("tuning: decode dataset: %w", err)
	}
	return &ds, nil
}

// environments materializes a family's environment list.
func environments(f Family, cfg *Config, rng *xrand.Rand) []harness.Params {
	switch f {
	case SITEBaseline:
		return []harness.Params{harness.SITEBaseline()}
	case PTEBaseline:
		return []harness.Params{harness.PTEBaseline(cfg.PTEWorkgroups, cfg.PTEWorkgroupSize)}
	default:
		envs := make([]harness.Params, cfg.Environments)
		for i := range envs {
			envs[i] = harness.Random(rng, f.Parallel(), cfg.Scale)
		}
		return envs
	}
}

// Run executes a tuning run over the given tests (typically the 32
// mutants) across all families and devices. progress, when non-nil,
// receives one line per (family, environment, device).
func Run(cfg Config, tests []*litmus.Test, progress func(string)) (*Dataset, error) {
	if len(tests) == 0 {
		return nil, fmt.Errorf("tuning: no tests")
	}
	ds := &Dataset{Config: cfg}
	root := xrand.New(cfg.Seed)
	for _, fam := range Families() {
		envRng := root.Split()
		envs := environments(fam, &cfg, envRng)
		iters := cfg.iterations(fam)
		for ei, env := range envs {
			envID := fmt.Sprintf("%s-%03d", fam, ei)
			for _, devName := range cfg.devices() {
				prof, ok := gpu.ProfileByName(devName)
				if !ok {
					return nil, fmt.Errorf("tuning: unknown device %q", devName)
				}
				dev, err := gpu.NewDevice(prof, gpu.Bugs{})
				if err != nil {
					return nil, err
				}
				runner, err := harness.NewRunner(dev, env)
				if err != nil {
					return nil, fmt.Errorf("tuning: %s: %w", envID, err)
				}
				if progress != nil {
					progress(fmt.Sprintf("%s on %s (%d tests x %d iterations)",
						envID, devName, len(tests), iters))
				}
				testRng := root.Split()
				for _, test := range tests {
					res, err := runner.Run(test, iters, testRng)
					if err != nil {
						return nil, fmt.Errorf("tuning: %s/%s/%s: %w", envID, devName, test.Name, err)
					}
					ds.Records = append(ds.Records, Record{
						Family:      fam.String(),
						EnvID:       envID,
						Env:         env,
						Device:      devName,
						Test:        test.Name,
						Mutator:     test.Mutator,
						IsMutant:    test.IsMutant,
						Iterations:  res.Iterations,
						Instances:   res.Instances,
						TargetCount: res.TargetCount,
						Violations:  res.Violations,
						SimSeconds:  res.SimSeconds,
						TargetRate:  res.TargetRate(),
					})
				}
			}
		}
	}
	return ds, nil
}

// MutationScore computes the Fig. 5 mutation score: the fraction of
// mutants killed in at least one environment of the family on the
// device. Empty device ("") aggregates over all devices; empty mutator
// aggregates over all mutators.
func (ds *Dataset) MutationScore(family, device, mutator string) (killed, total int) {
	type key struct{ test, device string }
	kills := map[key]bool{}
	seen := map[key]bool{}
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		if device != "" && r.Device != device {
			continue
		}
		if mutator != "" && r.Mutator != mutator {
			continue
		}
		k := key{r.Test, r.Device}
		seen[k] = true
		if r.TargetCount > 0 {
			kills[k] = true
		}
	}
	return len(kills), len(seen)
}

// AvgDeathRate computes the Fig. 5 average mutant death rate: the mean
// over (mutant, device) pairs of the maximum kill rate across the
// family's environments. Filters as in MutationScore.
func (ds *Dataset) AvgDeathRate(family, device, mutator string) float64 {
	type key struct{ test, device string }
	maxRate := map[key]float64{}
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		if device != "" && r.Device != device {
			continue
		}
		if mutator != "" && r.Mutator != mutator {
			continue
		}
		k := key{r.Test, r.Device}
		if _, ok := maxRate[k]; !ok {
			maxRate[k] = 0
		}
		if r.TargetRate > maxRate[k] {
			maxRate[k] = r.TargetRate
		}
	}
	if len(maxRate) == 0 {
		return 0
	}
	rates := make([]float64, 0, len(maxRate))
	for _, v := range maxRate {
		rates = append(rates, v)
	}
	return stats.Mean(rates)
}

// RateTables builds per-mutant confidence rate tables for one family:
// environment key -> device -> death rate, the input to Algorithm 1
// and the Fig. 6 sweep.
func (ds *Dataset) RateTables(family string) []confidence.TestRates {
	byTest := map[string]confidence.RateTable{}
	var order []string
	for _, r := range ds.Records {
		if !r.IsMutant || r.Family != family {
			continue
		}
		rt, ok := byTest[r.Test]
		if !ok {
			rt = confidence.RateTable{}
			byTest[r.Test] = rt
			order = append(order, r.Test)
		}
		if rt[r.EnvID] == nil {
			rt[r.EnvID] = map[string]float64{}
		}
		rt[r.EnvID][r.Device] = r.TargetRate
	}
	out := make([]confidence.TestRates, 0, len(order))
	for _, name := range order {
		out = append(out, confidence.TestRates{Test: name, Rates: byTest[name]})
	}
	return out
}

// Devices returns the distinct device names in record order.
func (ds *Dataset) Devices() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range ds.Records {
		if !seen[r.Device] {
			seen[r.Device] = true
			out = append(out, r.Device)
		}
	}
	return out
}

// Mutators returns the distinct mutator names in record order.
func (ds *Dataset) Mutators() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range ds.Records {
		if r.Mutator != "" && !seen[r.Mutator] {
			seen[r.Mutator] = true
			out = append(out, r.Mutator)
		}
	}
	return out
}
