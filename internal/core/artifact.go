package core

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/diskio"
	"repro/internal/harness"
)

// CampaignArtifact is the machine-readable report a campaign publishes:
// what `mcmutants campaign -out` writes and what the serve subsystem
// returns from GET /api/v1/jobs/{id}/report. Both render through
// Encode, so a job submitted to a server and the same spec run through
// the local CLI produce byte-identical artifacts — the property the
// loadgen example and the CI serve smoke assert with cmp.
type CampaignArtifact struct {
	Kind            string               `json:"kind"`
	Conformance     []*ConformanceReport `json:"conformance,omitempty"`
	Evaluate        []EvaluateEntry      `json:"evaluate,omitempty"`
	StorageDegraded bool                 `json:"storage_degraded,omitempty"`
}

// EvaluateEntry pairs a device with its environment-evaluation score in
// the campaign artifact.
type EvaluateEntry struct {
	Device string    `json:"device"`
	Score  *EnvScore `json:"score"`
}

// Encode writes the artifact's canonical rendering: two-space indented
// JSON, one trailing newline. Every producer must go through this
// method — byte identity across producers is part of the artifact's
// contract.
func (a *CampaignArtifact) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// WriteAtomic publishes the artifact at path with all-or-nothing
// visibility (write temp → fsync → rename → fsync dir). A nil fsys
// means the real filesystem.
func (a *CampaignArtifact) WriteAtomic(fsys diskio.FS, path string) error {
	if fsys == nil {
		fsys = diskio.OS{}
	}
	return diskio.WriteAtomic(fsys, path, a.Encode)
}

// EnvByName resolves a testing-environment preset by name: the tuned
// and baseline PTE/SITE environments the CLI flags and serve job specs
// share. wgs and wgSize size the PTE presets (testing workgroups and
// workgroup size).
func EnvByName(name string, wgs, wgSize int) (harness.Params, error) {
	switch name {
	case "pte":
		p := harness.PTEBaseline(wgs, wgSize)
		p.MaxWorkgroups = p.TestingWorkgroups + 4
		p.MemStressPct = 100
		p.MemStressIters = 16
		p.PreStressPct = 80
		p.PreStressIters = 4
		p.MemStride = 2
		p.MemLocOffset = 1
		return p, nil
	case "pte-baseline":
		return harness.PTEBaseline(wgs, wgSize), nil
	case "site":
		p := harness.SITEBaseline()
		p.MaxWorkgroups = 16
		p.MemStressPct = 100
		p.MemStressIters = 16
		p.PreStressPct = 100
		p.PreStressIters = 4
		p.MemStride = 2
		p.MemLocOffset = 1
		return p, nil
	case "site-baseline":
		return harness.SITEBaseline(), nil
	default:
		return harness.Params{}, fmt.Errorf("unknown environment %q (pte, pte-baseline, site, site-baseline)", name)
	}
}
