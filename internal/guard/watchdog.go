package guard

import (
	"fmt"
	"sync"
	"time"
)

// Watchdog supervises running jobs against their wall-deadline and
// stall budgets. It is fed two streams: Observe with a monotone
// progress mark (the sum of a job's cumulative Progress counters — the
// mark moves exactly when a cell resolves, so a wedged device, a
// livelocked retry loop and a stuck distributed coordinator all look
// the same: a frozen mark), and Sweep, which checks every watched job
// against the injected clock and fires the expiry callback for each
// violation. Both enforcement decisions live in Sweep, so a fake clock
// plus a manual Sweep reproduces every transition deterministically.
type Watchdog struct {
	clock Clock
	// onExpire is called outside the watchdog lock, once per job —
	// an expired job is forgotten before its callback fires.
	onExpire func(id string, cause error)

	mu   sync.Mutex
	jobs map[string]*watch
}

type watch struct {
	start       time.Time
	wall, stall time.Duration
	mark        uint64
	lastAdvance time.Time
}

// NewWatchdog builds a watchdog on the given clock. onExpire receives
// the job ID and a cause wrapping ErrDeadlineExceeded or ErrStalled.
func NewWatchdog(clock Clock, onExpire func(id string, cause error)) *Watchdog {
	if clock == nil {
		clock = SystemClock{}
	}
	return &Watchdog{clock: clock, onExpire: onExpire, jobs: map[string]*watch{}}
}

// Watch begins supervising a job. A zero wall or stall budget disables
// that check; with both zero the call is a no-op.
func (w *Watchdog) Watch(id string, wall, stall time.Duration) {
	if wall <= 0 && stall <= 0 {
		return
	}
	now := w.clock.Now()
	w.mu.Lock()
	w.jobs[id] = &watch{start: now, wall: wall, stall: stall, lastAdvance: now}
	w.mu.Unlock()
}

// Observe feeds a job's current progress mark. The stall clock resets
// only when the mark moves — periodic snapshots with frozen counters
// do not count as progress.
func (w *Watchdog) Observe(id string, mark uint64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	j, ok := w.jobs[id]
	if !ok || mark == j.mark {
		return
	}
	j.mark = mark
	j.lastAdvance = w.clock.Now()
}

// Forget stops supervising a job (it finished or was cancelled).
func (w *Watchdog) Forget(id string) {
	w.mu.Lock()
	delete(w.jobs, id)
	w.mu.Unlock()
}

// Watched reports how many jobs are currently supervised.
func (w *Watchdog) Watched() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.jobs)
}

// Sweep checks every watched job against the clock and fires onExpire
// for each violation, returning the number fired. The deadline check
// wins when both budgets are violated at once. Expired jobs are
// removed before their callbacks run, so a violation fires exactly
// once and the callbacks run without the watchdog lock held.
func (w *Watchdog) Sweep() int {
	now := w.clock.Now()
	type firing struct {
		id    string
		cause error
	}
	var fired []firing
	w.mu.Lock()
	for id, j := range w.jobs {
		switch {
		case j.wall > 0 && now.Sub(j.start) > j.wall:
			fired = append(fired, firing{id, fmt.Errorf("%w (ran %s, budget %s)",
				ErrDeadlineExceeded, now.Sub(j.start).Round(time.Millisecond), j.wall)})
		case j.stall > 0 && now.Sub(j.lastAdvance) > j.stall:
			fired = append(fired, firing{id, fmt.Errorf("%w (no progress for %s, budget %s)",
				ErrStalled, now.Sub(j.lastAdvance).Round(time.Millisecond), j.stall)})
		default:
			continue
		}
		delete(w.jobs, id)
	}
	w.mu.Unlock()
	for _, f := range fired {
		if w.onExpire != nil {
			w.onExpire(f.id, f.cause)
		}
	}
	return len(fired)
}
