package mutation

import "repro/internal/mm"

// Mutator 2: weakening po-loc on four events (Sec. 3.2, Fig. 3b).
//
// The template has two same-location accesses per thread (a, b in
// thread 0 and c, d in thread 1) with communication edges b -> c and
// d -> a closing a cycle that SC-per-location forbids. Requiring each
// communication edge to touch at least one write, and identifying the
// two thread-symmetric orientations, leaves exactly six shapes — the
// single-location ("coherence") renditions of the classic weak-memory
// tests MP, LB, SB, S, R and 2+2W.
//
// The edge disruptor weakens po-loc to po by moving b and c to a second
// location y, which yields precisely the classic two-location weak
// tests: behaviors that a relaxed MCS allows but that require stress to
// observe. This disruptor models implementations that mishandle
// aliased or dynamically computed addresses (the NVIDIA Kepler
// coherence bug recreated in Sec. 5.4 fails the MP shape, MP-CO).
//
// All-write coherence chains that final memory state cannot pin (a
// location written twice by one thread can never legally end on that
// thread's first write) are witnessed by observer threads instead.
func weakeningPoLocSpecs() []tspec {
	const x, y = 0, 1
	type shape struct {
		name       string // conformance name ("<shape>-CO")
		mutantName string // classic weak-memory name
		// Conformance events, all on x; index 1 (b) and 2 (c) move to y
		// in the mutant. Reads whose conformance and mutant target
		// values differ carry both.
		t0, t1 [2]espec
		// mutT0, mutT1 override mutant events where the target value
		// changes (nil entries reuse the conformance espec with the
		// location rewritten).
		confObserver []mm.Val
		confFinals   map[int]mm.Val
		mutFinals    map[int]mm.Val
		// mutOverride replaces specific mutant events (keyed by thread,
		// then slot) for reads whose expected value changes when the
		// access moves to y.
		mutOverride map[[2]int]espec
	}
	shapes := []shape{
		{
			// MP-CO: thread 1 sees the second write but then reads the
			// initial state. The mutant is classic message passing.
			name: "MP-CO", mutantName: "MP",
			t0: [2]espec{ewrite(x, 1, "a"), ewrite(x, 2, "b")},
			t1: [2]espec{ereadV(x, 2, "c"), ereadV(x, 0, "d")},
		},
		{
			// LB-CO: each thread's first read sees the other thread's
			// later write. The mutant is classic load buffering.
			name: "LB-CO", mutantName: "LB",
			t0: [2]espec{ereadV(x, 2, "a"), ewrite(x, 1, "b")},
			t1: [2]espec{ereadV(x, 1, "c"), ewrite(x, 2, "d")},
		},
		{
			// SB-CO: both threads miss their own prior write — on one
			// location a flat coherence violation; on two locations
			// (the mutant) the classic store-buffering relaxation.
			name: "SB-CO", mutantName: "SB",
			t0: [2]espec{ewrite(x, 1, "a"), ereadV(x, 0, "b")},
			t1: [2]espec{ewrite(x, 2, "c"), ereadV(x, 0, "d")},
		},
		{
			// S-CO: c reads b while the observer witnesses d landing
			// coherence-before a. The mutant is the classic S shape,
			// where the final value of x pins d before a.
			name: "S-CO", mutantName: "S",
			t0:           [2]espec{ewrite(x, 1, "a"), ewrite(x, 2, "b")},
			t1:           [2]espec{ereadV(x, 2, "c"), ewrite(x, 3, "d")},
			confObserver: []mm.Val{3, 1},
			mutFinals:    map[int]mm.Val{x: 1},
		},
		{
			// R-CO: d reads c while the observer witnesses the chain
			// b, c, a. The mutant is the classic R shape: d misses a
			// entirely and the final value of y pins b before c.
			name: "R-CO", mutantName: "R",
			t0:           [2]espec{ewrite(x, 1, "a"), ewrite(x, 2, "b")},
			t1:           [2]espec{ewrite(x, 3, "c"), ereadV(x, 3, "d")},
			confObserver: []mm.Val{2, 3, 1},
			mutFinals:    map[int]mm.Val{y: 3},
			mutOverride:  map[[2]int]espec{{1, 1}: ereadV(x, 0, "d")},
		},
		{
			// 2+2W-CO: four writes; the observer witnesses the chain
			// b, c, d, a. The mutant is classic 2+2W, where the final
			// values of both locations pin both first writes last.
			name: "2+2W-CO", mutantName: "2+2W",
			t0:           [2]espec{ewrite(x, 1, "a"), ewrite(x, 2, "b")},
			t1:           [2]espec{ewrite(x, 3, "c"), ewrite(x, 4, "d")},
			confObserver: []mm.Val{2, 3, 4, 1},
			mutFinals:    map[int]mm.Val{x: 1, y: 3},
		},
	}
	var specs []tspec
	for _, sh := range shapes {
		conf := tspec{
			name:     sh.name,
			mutator:  WeakeningPoLoc,
			model:    mm.SCPerLocation,
			threads:  [][]espec{{sh.t0[0], sh.t0[1]}, {sh.t1[0], sh.t1[1]}},
			observer: sh.confObserver,
			obsLoc:   x,
			finals:   sh.confFinals,
		}
		specs = append(specs, conf)
		// The disruptor: move b (thread 0 slot 1) and c (thread 1 slot
		// 0) to location y, weakening po-loc to po.
		mutT0 := [2]espec{sh.t0[0], sh.t0[1]}
		mutT1 := [2]espec{sh.t1[0], sh.t1[1]}
		mutT0[1].loc = y
		mutT1[0].loc = y
		if ov, ok := sh.mutOverride[[2]int{0, 0}]; ok {
			mutT0[0] = ov
		}
		if ov, ok := sh.mutOverride[[2]int{0, 1}]; ok {
			ov.loc = y
			mutT0[1] = ov
		}
		if ov, ok := sh.mutOverride[[2]int{1, 0}]; ok {
			ov.loc = y
			mutT1[0] = ov
		}
		if ov, ok := sh.mutOverride[[2]int{1, 1}]; ok {
			mutT1[1] = ov
		}
		// Reads moved to y that expected a same-location value now read
		// the initial state unless overridden.
		mut := tspec{
			name:     sh.mutantName,
			mutator:  WeakeningPoLoc,
			isMutant: true,
			base:     sh.name,
			model:    mm.SCPerLocation,
			threads:  [][]espec{{mutT0[0], mutT0[1]}, {mutT1[0], mutT1[1]}},
			finals:   sh.mutFinals,
		}
		// SB's reads move to the other location and now miss writes
		// they used to own: both still target 0, which the conformance
		// spec already encodes, so no override needed there; the only
		// value rewrite is R's d (handled via mutOverride above).
		specs = append(specs, mut)
	}
	return specs
}
