package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buildinfo"
	"repro/internal/core"
	"repro/internal/diskio"
	"repro/internal/dist"
	"repro/internal/gpu"
	"repro/internal/guard"
	"repro/internal/resultcache"
	"repro/internal/sched"
)

// Config sizes the campaign server. The zero value of each field
// selects a sensible default (see New).
type Config struct {
	// StateDir is the root of the server's durable state: job records,
	// checkpoints and published reports. Required.
	StateDir string
	// Runners is the pool size — how many jobs execute concurrently.
	// Default 2.
	Runners int
	// JobWorkers is each job's scheduler worker count (the -parallel
	// flag of the CLI verbs; any value yields identical artifacts).
	// Default 4.
	JobWorkers int
	// QueueDepth bounds the FIFO queue; submissions beyond it are
	// rejected with 429. Default 64.
	QueueDepth int
	// PerClient caps one client's live (queued + running) jobs;
	// submissions beyond it are rejected with 429. Default 4.
	PerClient int
	// FsyncEvery is the checkpoint durability policy (see the CLI
	// -fsync-every flag). Default 0: the scheduler's bounded-loss
	// default.
	FsyncEvery int
	// ProgressEvery is the cadence of progress snapshots feeding the
	// SSE hub and metrics. Default sched.DefaultProgressEvery.
	ProgressEvery time.Duration
	// EnableDist mounts the distributed-coordination API (/dist/v1/)
	// and accepts jobs with "distributed": true — such jobs register a
	// campaign coordinator instead of executing cells locally, and
	// `mcmutants work` processes pointed at this server execute the
	// leased ranges. The artifact stays byte-identical either way.
	EnableDist bool
	// DistLeaseTTL is the worker lease deadline for distributed jobs.
	// Default 10s.
	DistLeaseTTL time.Duration
	// CacheDir, when non-empty, roots a persistent result cache shared
	// by every job: cells already computed under identical parameters —
	// by an earlier job, another server over the same directory, or the
	// CLI verbs — are served from disk. Caching never changes artifacts
	// (they stay byte-identical to a cold run) and a cache storage
	// failure degrades the cache to pass-through without failing jobs.
	CacheDir string
	// CacheMaxBytes is the cache size budget enforced by LRU compaction
	// at open; 0 means unbounded.
	CacheMaxBytes int64
	// FS is the filesystem seam for all durable writes; nil means the
	// real filesystem. Tests inject a fault model.
	FS diskio.FS
	// Logf, when non-nil, receives one line per server event (job
	// transitions, boot recovery, drain).
	Logf func(format string, args ...any)

	// Budgets is the per-job budget policy: defaults applied when a
	// spec requests nothing and caps a request may not exceed. The zero
	// value means no defaults and no caps.
	Budgets guard.Limits
	// PoisonBoots caps how many boots may find a job running before it
	// is quarantined as poisoned instead of re-queued — the defense
	// against a job that crashes the process on every attempt.
	// Default 3; negative disables quarantine (never recommended).
	PoisonBoots int
	// MemSoftBytes and MemHardBytes are the brownout watermarks over
	// the live heap. At soft the server pauses queue drain and sheds
	// new submissions (429 + Retry-After); at hard it additionally
	// cancels the newest running jobs into the shed state. Zero
	// disables the watcher.
	MemSoftBytes uint64
	MemHardBytes uint64
	// GuardEvery is the supervision cadence: watchdog sweeps and memory
	// samples. Default 1s. The cadence is wall clock, but every
	// decision taken at a tick is a function of Clock/ReadMem, so tests
	// drive ticks directly.
	GuardEvery time.Duration
	// Clock feeds the watchdog; nil means the system clock. Tests
	// inject guard.FakeClock.
	Clock guard.Clock
	// ReadMem feeds the memory watcher; nil means runtime heap stats.
	// Tests script pressure trajectories.
	ReadMem func() uint64
}

// errJobCancelled is the cancel cause distinguishing a client DELETE
// from a server shutdown: the former ends the job as cancelled, the
// latter re-queues it for the next boot.
var errJobCancelled = errors.New("serve: job cancelled by client")

// runningJob is the server's handle on an executing job.
type runningJob struct {
	cancel context.CancelCauseFunc
	last   sched.Progress
}

// Server is the campaign service: a durable job store, a bounded FIFO
// queue drained by a runner pool, an SSE hub and a metrics registry
// behind an HTTP API.
type Server struct {
	cfg   Config
	study *core.Study
	fs    diskio.FS

	store   *store
	hub     *hub
	metrics *metrics
	cache   *resultcache.Cache // nil unless Config.CacheDir
	dist    *dist.Hub          // nil unless Config.EnableDist
	mux     *http.ServeMux

	watchdog *guard.Watchdog
	mem      *guard.MemWatcher // nil unless a watermark is configured
	// paused gates queue drain during brownout. Workers re-check it
	// under qmu in next; transitions go through wakeWorkers so the
	// lost-wakeup argument there covers unpausing too.
	paused atomic.Bool

	qmu   sync.Mutex
	qcond *sync.Cond
	queue []string

	mu      sync.Mutex
	running map[string]*runningJob

	// submitMu serializes submission: the existence check, the
	// per-client admission count and the register+enqueue must be one
	// critical section, or two identical concurrent submissions both
	// miss the check and the same job ID runs twice.
	submitMu sync.Mutex

	draining atomic.Bool
	drainCh  chan struct{}
	wg       sync.WaitGroup
}

// New builds a server over the state directory, loading persisted
// jobs and re-queueing any that were queued or running when the
// previous process stopped — those resume from their checkpoints.
func New(cfg Config) (*Server, error) {
	if cfg.StateDir == "" {
		return nil, fmt.Errorf("serve: Config.StateDir is required")
	}
	if cfg.Runners <= 0 {
		cfg.Runners = 2
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.PerClient <= 0 {
		cfg.PerClient = 4
	}
	if cfg.ProgressEvery <= 0 {
		cfg.ProgressEvery = sched.DefaultProgressEvery
	}
	if cfg.DistLeaseTTL <= 0 {
		cfg.DistLeaseTTL = 10 * time.Second
	}
	if cfg.FS == nil {
		cfg.FS = diskio.OS{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.PoisonBoots == 0 {
		cfg.PoisonBoots = 3
	}
	if cfg.GuardEvery <= 0 {
		cfg.GuardEvery = time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = guard.SystemClock{}
	}
	if cfg.MemSoftBytes > 0 && cfg.MemHardBytes > 0 && cfg.MemSoftBytes > cfg.MemHardBytes {
		return nil, fmt.Errorf("serve: soft watermark %d exceeds hard watermark %d", cfg.MemSoftBytes, cfg.MemHardBytes)
	}
	study, err := core.NewStudy()
	if err != nil {
		return nil, err
	}
	st, err := openStore(cfg.FS, cfg.StateDir, cfg.Logf)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		study:   study,
		fs:      cfg.FS,
		store:   st,
		hub:     newHub(),
		metrics: newMetrics(),
		running: map[string]*runningJob{},
		drainCh: make(chan struct{}),
	}
	s.watchdog = guard.NewWatchdog(cfg.Clock, s.expireJob)
	if cfg.MemSoftBytes > 0 || cfg.MemHardBytes > 0 {
		s.mem = guard.NewMemWatcher(cfg.MemSoftBytes, cfg.MemHardBytes, cfg.ReadMem, s.onMemLevel)
	}
	if cfg.EnableDist {
		s.dist = dist.NewHub()
	}
	if cfg.CacheDir != "" {
		// Misconfiguration (permissions, a file in the way) fails server
		// startup; a storage fault yields a cache already degraded to
		// pass-through, because a full disk must not take the service down.
		c, err := resultcache.Open(cfg.CacheDir, resultcache.Options{FS: cfg.FS, MaxBytes: cfg.CacheMaxBytes})
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	s.qcond = sync.NewCond(&s.qmu)
	s.routes()
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover re-queues jobs interrupted by the previous process: running
// jobs crashed mid-campaign, queued jobs never started, shed jobs were
// parked by a brownout that died with the process. All resume (or
// start) from whatever their checkpoints hold, oldest first — except a
// job found running at too many consecutive boots. Each such boot
// means the process died while this job was active; past the poison
// cap the job is presumed to be what keeps killing the process, and it
// is quarantined in the poisoned dead-letter state instead of fed back
// into the crash loop. Graceful drains park jobs as queued, so clean
// restarts never advance the incarnation count.
func (s *Server) recover() error {
	for _, j := range s.store.list() {
		switch j.State {
		case StateRunning:
			if s.cfg.PoisonBoots > 0 && j.BootIncarnations >= s.cfg.PoisonBoots {
				boots := j.BootIncarnations
				if _, err := s.store.update(j.ID, func(j *Job) {
					j.State = StatePoisoned
					j.Error = fmt.Sprintf(
						"quarantined: %d consecutive boots found this job running (cap %d); resubmit the spec to retry it",
						boots+1, s.cfg.PoisonBoots)
					now := time.Now().UTC()
					j.FinishedAt = &now
					j.StartedAt = nil
				}); err != nil {
					return err
				}
				s.metrics.jobFinished(StatePoisoned)
				s.metrics.guardPoisoned()
				s.cfg.Logf("serve: job %s poisoned after %d boot incarnations", j.ID, boots+1)
				continue
			}
			if _, err := s.store.update(j.ID, func(j *Job) {
				j.State = StateQueued
				j.Resumes++
				j.BootIncarnations++
				j.StartedAt = nil
			}); err != nil {
				return err
			}
			s.cfg.Logf("serve: recovered running job %s: re-queued for resume (boot incarnation %d)",
				j.ID, j.BootIncarnations+1)
			s.enqueue(j.ID)
		case StateShed:
			// Shed is a parked state, not a verdict: the pressure that
			// shed the job died with the old process, so re-queue.
			if _, err := s.store.update(j.ID, func(j *Job) {
				j.State = StateQueued
				j.Resumes++
				j.StartedAt = nil
			}); err != nil {
				return err
			}
			s.cfg.Logf("serve: recovered shed job %s: re-queued", j.ID)
			s.enqueue(j.ID)
		case StateQueued:
			s.cfg.Logf("serve: recovered queued job %s", j.ID)
			s.enqueue(j.ID)
		}
	}
	return nil
}

// expireJob is the watchdog's expiry callback: cancel the running job
// with the typed cause; runJob's classification does the rest.
func (s *Server) expireJob(id string, cause error) {
	s.mu.Lock()
	rj := s.running[id]
	s.mu.Unlock()
	if rj != nil {
		s.cfg.Logf("serve: job %s: %v", id, cause)
		rj.cancel(cause)
	}
}

// onMemLevel reacts to watermark transitions: any pressure pauses
// queue drain (paused workers park in next; running jobs continue),
// and a return to OK resumes drain and re-queues shed jobs. Hard-level
// job shedding happens per guard tick (see guardTick), not here, so
// sustained pressure keeps shedding one job at a time until it clears.
func (s *Server) onMemLevel(from, to guard.Level, heap uint64) {
	s.cfg.Logf("serve: memory watermark %s -> %s (heap %d bytes)", from, to, heap)
	if to == guard.LevelOK {
		s.paused.Store(false)
		s.requeueShed()
		s.wakeWorkers()
		return
	}
	s.paused.Store(true)
}

// guardTick is one supervision step: sample memory (shedding the
// newest running job while the hard watermark is exceeded) and sweep
// the watchdog. Production runs it on the GuardEvery ticker; tests
// call it directly after moving the fake clock or pressure script.
func (s *Server) guardTick() {
	if s.mem != nil && s.mem.Sample() == guard.LevelHard {
		s.shedNewestRunning()
	}
	s.watchdog.Sweep()
}

// shedNewestRunning cancels the most recently started running job with
// the shed cause — newest first, because it has the least sunk work
// and the freshest checkpoint deficit.
func (s *Server) shedNewestRunning() {
	s.mu.Lock()
	ids := make([]string, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	var newest string
	var newestAt time.Time
	for _, id := range ids {
		j, ok := s.store.get(id)
		if !ok || j.State != StateRunning || j.StartedAt == nil {
			continue
		}
		if newest == "" || j.StartedAt.After(newestAt) {
			newest, newestAt = id, *j.StartedAt
		}
	}
	if newest == "" {
		return
	}
	s.mu.Lock()
	rj := s.running[newest]
	s.mu.Unlock()
	if rj != nil {
		s.cfg.Logf("serve: shedding job %s under memory pressure", newest)
		rj.cancel(guard.ErrShed)
	}
}

// requeueShed returns every shed job to the queue once pressure
// clears. submitMu serializes this against cancellation of a shed job
// and against admissions reading the in-flight count.
func (s *Server) requeueShed() {
	s.submitMu.Lock()
	defer s.submitMu.Unlock()
	for _, j := range s.store.list() {
		if j.State != StateShed {
			continue
		}
		if _, err := s.store.update(j.ID, func(j *Job) {
			j.State = StateQueued
			j.Resumes++
		}); err != nil {
			s.cfg.Logf("serve: job %s: requeue after shed: %v", j.ID, err)
			continue
		}
		s.cfg.Logf("serve: job %s re-queued after brownout", j.ID)
		s.enqueue(j.ID)
	}
}

// fleet is the default device list: every Table 3 profile.
func fleet() []string {
	profs := gpu.Profiles()
	out := make([]string, 0, len(profs))
	for _, p := range profs {
		out = append(out, p.ShortName)
	}
	return out
}

// --- queue ---

// enqueue appends without a depth check — boot recovery and requeues
// bypass admission (they re-enter jobs the server already accepted).
func (s *Server) enqueue(id string) {
	s.qmu.Lock()
	s.queue = append(s.queue, id)
	s.qmu.Unlock()
	s.qcond.Signal()
}

// tryEnqueue appends subject to the depth bound.
func (s *Server) tryEnqueue(id string) bool {
	s.qmu.Lock()
	defer func() {
		s.qmu.Unlock()
		s.qcond.Signal()
	}()
	if len(s.queue) >= s.cfg.QueueDepth {
		return false
	}
	s.queue = append(s.queue, id)
	return true
}

// wakeWorkers broadcasts under qmu. The condition workers re-check in
// next includes ctx.Err(), which is not guarded by qmu — a bare
// Broadcast could fire between a worker's check and its Wait, losing
// the wakeup forever. Holding qmu forces the broadcast to land either
// before the worker's check (it sees the cancelled ctx) or after it
// parks (it is woken).
func (s *Server) wakeWorkers() {
	s.qmu.Lock()
	s.qcond.Broadcast()
	s.qmu.Unlock()
}

// queueDepth reports the current backlog.
func (s *Server) queueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.queue)
}

// dequeue removes a specific job (cancellation of a queued job);
// false means a runner already claimed it.
func (s *Server) dequeue(id string) bool {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for i, q := range s.queue {
		if q == id {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			return true
		}
	}
	return false
}

// next blocks until a job is available — and drain is not paused by a
// brownout — or ctx ends. Pausing parks the worker without losing its
// place; unpausing goes through wakeWorkers.
func (s *Server) next(ctx context.Context) (string, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for len(s.queue) == 0 || s.paused.Load() {
		if ctx.Err() != nil {
			return "", false
		}
		s.qcond.Wait()
	}
	if ctx.Err() != nil {
		return "", false
	}
	id := s.queue[0]
	s.queue = s.queue[1:]
	return id, true
}

// --- runner pool ---

// worker drains the queue until ctx ends.
func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		id, ok := s.next(ctx)
		if !ok {
			return
		}
		s.runJob(ctx, id)
	}
}

// runJob executes one job end to end: state transitions, progress
// fan-out, budget supervision, artifact publication and terminal
// classification.
func (s *Server) runJob(ctx context.Context, id string) {
	// A queue entry can go stale when its job was cancelled while
	// parked in the shed state; drop it instead of reviving the job.
	if j, ok := s.store.get(id); !ok || j.State != StateQueued {
		return
	}
	jctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	rj := &runningJob{cancel: cancel}
	s.mu.Lock()
	s.running[id] = rj
	s.mu.Unlock()
	defer func() {
		s.watchdog.Forget(id)
		s.mu.Lock()
		delete(s.running, id)
		s.mu.Unlock()
		s.metrics.forget(id)
	}()

	job, err := s.store.update(id, func(j *Job) {
		j.State = StateRunning
		now := time.Now().UTC()
		j.StartedAt = &now
	})
	if err != nil {
		// The transition rolled back (update is atomic), but the job is
		// already off the queue — fail it so it doesn't sit "queued"
		// with no runner ever coming; resubmission can re-queue it.
		s.cfg.Logf("serve: job %s: start: %v", id, err)
		now := time.Now().UTC()
		s.finishJob(id, func(j *Job) {
			j.State = StateFailed
			j.Error = fmt.Sprintf("persist start transition: %v", err)
			j.FinishedAt = &now
		})
		return
	}
	s.cfg.Logf("serve: job %s running (%s, %d cells)", id, job.Spec.Kind, job.Cells)
	s.publishJobEvent(id, "job", job)

	// The effective budget: the spec's requested values with the
	// server defaults filled in. The watchdog enforces the wall and
	// stall budgets against the injected clock; the cell timeout rides
	// into the campaign options (and, for distributed jobs, into the
	// descriptor workers execute under).
	eff := s.cfg.Budgets.Resolve(job.Spec.budget())
	s.watchdog.Watch(id, eff.WallDeadline, eff.StallTimeout)

	onProgress := func(p sched.Progress) {
		s.mu.Lock()
		rj.last = p
		s.mu.Unlock()
		s.watchdog.Observe(id, progressMark(p))
		s.metrics.observe(id, p)
		if data, err := json.Marshal(p); err == nil {
			s.hub.publish(id, event{name: "progress", data: data})
		}
	}
	res, execErr := s.execute(jctx, job, eff, onProgress)

	s.mu.Lock()
	last := rj.last
	s.mu.Unlock()
	summary := summaryOf(last)
	now := time.Now().UTC()
	cause := context.Cause(jctx)

	switch {
	case execErr != nil:
		s.finishJob(id, func(j *Job) {
			j.State = StateFailed
			j.Error = execErr.Error()
			j.FinishedAt = &now
			j.Summary = summary
		})
	case res.interrupted && errors.Is(cause, errJobCancelled):
		s.finishJob(id, func(j *Job) {
			j.State = StateCancelled
			j.FinishedAt = &now
			j.Summary = summary
		})
	case res.interrupted && (errors.Is(cause, guard.ErrDeadlineExceeded) || errors.Is(cause, guard.ErrStalled)):
		state := StateDeadlineExceeded
		if errors.Is(cause, guard.ErrStalled) {
			state = StateStalled
		}
		s.finishJob(id, func(j *Job) {
			j.State = state
			j.Error = cause.Error()
			j.FinishedAt = &now
			j.Summary = summary
		})
	case res.interrupted && errors.Is(cause, guard.ErrShed):
		// Parked, not terminal: the job re-queues when pressure clears
		// (requeueShed) or at the next boot. No terminal SSE event —
		// subscribers see the state change and keep streaming.
		shed, err := s.store.update(id, func(j *Job) {
			j.State = StateShed
			j.StartedAt = nil
			j.Summary = summary
		})
		if err != nil {
			s.cfg.Logf("serve: job %s: persist shed: %v", id, err)
		} else {
			s.publishJobEvent(id, "job", shed)
		}
		s.metrics.guardShed()
		s.cfg.Logf("serve: job %s shed under memory pressure (%d/%d cells done)", id, last.Done, last.Total)
	case res.interrupted:
		// Server shutdown: drain back to queued so the next boot
		// resumes from the checkpoint. No terminal event — the job is
		// not over.
		if _, err := s.store.update(id, func(j *Job) {
			j.State = StateQueued
			j.Resumes++
			j.StartedAt = nil
			j.Summary = summary
		}); err != nil {
			s.cfg.Logf("serve: job %s: persist drain: %v", id, err)
		}
		s.cfg.Logf("serve: job %s drained to queued (%d/%d cells done)", id, last.Done, last.Total)
	default:
		if err := diskio.WriteFileAtomic(s.fs, s.store.reportPath(id), res.artifact); err != nil {
			s.finishJob(id, func(j *Job) {
				j.State = StateFailed
				j.Error = fmt.Sprintf("publish report: %v", err)
				j.FinishedAt = &now
				j.Summary = summary
			})
			return
		}
		state := StateDone
		if res.degraded {
			state = StateDegraded
		}
		summary.StorageErr = res.storageErr
		s.finishJob(id, func(j *Job) {
			j.State = state
			j.FinishedAt = &now
			j.Summary = summary
		})
	}
}

// progressMark folds a cumulative snapshot into the watchdog's
// monotone progress mark. Every counter here advances exactly when a
// cell resolves (executes, replays, quarantines, retries, or is served
// from cache), so a frozen mark means the job is not moving — whether
// the wedge is a device, a retry livelock, or a distributed
// coordinator whose workers vanished. Elapsed time and rates are
// deliberately excluded: they advance on every snapshot.
func progressMark(p sched.Progress) uint64 {
	return uint64(p.Done) + uint64(p.Executed) + uint64(p.Replayed) +
		uint64(p.Failed) + uint64(p.Quarantined) + uint64(p.Retried) +
		uint64(p.Instances) + uint64(p.CacheHits) + uint64(p.CacheMisses) +
		uint64(p.CacheCorrupt)
}

// finishJob applies a terminal transition, bumps the completion
// counter and emits the terminal SSE event. Terminal states are
// installed in memory even when the disk refuses the record (a
// crashed filesystem must not leave a runnerless job looking alive);
// the stale on-disk record is re-queued by the next boot's recovery.
func (s *Server) finishJob(id string, fn func(*Job)) {
	j, err := s.store.updateForce(id, fn)
	if err != nil {
		if j == nil {
			s.cfg.Logf("serve: job %s: terminal state: %v", id, err)
			return
		}
		s.cfg.Logf("serve: job %s: persist terminal state: %v", id, err)
	}
	s.metrics.jobFinished(j.State)
	s.cfg.Logf("serve: job %s %s", id, j.State)
	if data, err := json.Marshal(j); err == nil {
		s.hub.finish(id, event{name: "done", data: data})
	}
}

// publishJobEvent emits a job-record event on the SSE stream.
func (s *Server) publishJobEvent(id, name string, j *Job) {
	if data, err := json.Marshal(j); err == nil {
		s.hub.publish(id, event{name: name, data: data})
	}
}

// Run serves the API on ln until ctx is cancelled, then drains:
// admission closes, SSE streams end, running jobs stop at the next
// cell boundary with their checkpoints fsynced, and interrupted jobs
// return to the queue for the next boot. Run returns nil after a
// clean drain; the caller maps ctx cancellation to its own exit
// convention.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	poolCtx, stopPool := context.WithCancel(context.Background())
	defer stopPool()
	// A cancelled pool context must also wake workers parked in next.
	defer context.AfterFunc(poolCtx, s.wakeWorkers)()
	s.wg.Add(s.cfg.Runners)
	for i := 0; i < s.cfg.Runners; i++ {
		go s.worker(poolCtx)
	}
	// The supervision loop: the ticker provides cadence, guardTick the
	// decisions (all taken against the injected clock/memory reader).
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		tick := time.NewTicker(s.cfg.GuardEvery)
		defer tick.Stop()
		for {
			select {
			case <-poolCtx.Done():
				return
			case <-tick.C:
				s.guardTick()
			}
		}
	}()
	hsrv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- hsrv.Serve(ln) }()
	select {
	case err := <-errc:
		stopPool()
		s.wakeWorkers()
		s.wg.Wait()
		return err
	case <-ctx.Done():
	}
	s.cfg.Logf("serve: draining (running jobs stop at the next cell, queue is preserved)")
	s.draining.Store(true)
	close(s.drainCh) // ends SSE streams so Shutdown below can finish
	stopPool()
	s.wakeWorkers()
	s.wg.Wait() // runners drain their jobs and persist queued state
	shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hsrv.Shutdown(shCtx); err != nil {
		hsrv.Close()
	}
	<-errc // http.ErrServerClosed
	s.cfg.Logf("serve: drain complete")
	return nil
}

// --- HTTP API ---

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.dist != nil {
		s.mux.Handle("/dist/v1/", s.dist)
	}
}

// Handler exposes the API mux (tests drive it via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON renders a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr renders a JSON error body.
func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// clientID identifies the caller for admission control: the X-API-Key
// header when present, else the remote address's host.
func clientID(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// SubmitResponse is the POST /api/v1/jobs body: the job record plus
// whether it already existed (idempotent resubmission).
type SubmitResponse struct {
	Job      *Job `json:"job"`
	Existing bool `json:"existing,omitempty"`
	Requeued bool `json:"requeued,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	js.normalize(fleet())
	plan, err := s.plan(&js)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid job spec: %v", err)
		return
	}
	id := jobID(plan.manifest, js)
	client := clientID(r)

	// One submission at a time past this point: check-then-register
	// must not interleave with an identical concurrent submission (or
	// the same job runs on two runners), and admit's per-client count
	// must not interleave with another submission's insert (or the cap
	// is exceeded). The section is short — no campaign work, just an
	// index lookup and one small atomic file write.
	s.submitMu.Lock()
	defer s.submitMu.Unlock()

	if existing, ok := s.store.get(id); ok {
		switch existing.State {
		case StateFailed, StateCancelled, StateDeadlineExceeded, StateStalled, StatePoisoned:
			// Terminal-but-incomplete: resubmission re-queues, resuming
			// from whatever the checkpoint holds. A poisoned job gets a
			// fresh incarnation budget — resubmission is the explicit
			// human override of the quarantine.
			if !s.admit(w, client) {
				return
			}
			s.hub.reset(id)
			s.metrics.forget(id)
			job, err := s.store.update(id, func(j *Job) {
				j.State = StateQueued
				j.Error = ""
				j.Resumes++
				j.BootIncarnations = 0
				j.StartedAt = nil
				j.FinishedAt = nil
			})
			if err != nil {
				writeErr(w, http.StatusInternalServerError, "requeue: %v", err)
				return
			}
			s.enqueue(id)
			writeJSON(w, http.StatusAccepted, SubmitResponse{Job: job, Existing: true, Requeued: true})
		default:
			writeJSON(w, http.StatusOK, SubmitResponse{Job: existing, Existing: true})
		}
		return
	}

	if !s.admit(w, client) {
		return
	}
	if s.queueDepth() >= s.cfg.QueueDepth {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusTooManyRequests, "queue full (%d jobs)", s.cfg.QueueDepth)
		return
	}
	job := &Job{
		ID:          id,
		Spec:        js,
		Client:      client,
		State:       StateQueued,
		Cells:       plan.cells,
		Manifest:    plan.manifest,
		SubmittedAt: time.Now().UTC(),
	}
	if err := s.store.put(job); err != nil {
		writeErr(w, http.StatusInternalServerError, "persist job: %v", err)
		return
	}
	if !s.tryEnqueue(id) {
		s.store.drop(id)
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusTooManyRequests, "queue full (%d jobs)", s.cfg.QueueDepth)
		return
	}
	s.cfg.Logf("serve: job %s queued by %s (%s, %d cells)", id, client, js.Kind, plan.cells)
	writeJSON(w, http.StatusAccepted, SubmitResponse{Job: job})
}

// admit applies the shared admission checks for anything that would
// put new work on the queue; it writes the rejection itself. Callers
// hold s.submitMu so the in-flight count cannot race a concurrent
// submission's insert.
func (s *Server) admit(w http.ResponseWriter, client string) bool {
	if s.draining.Load() {
		writeErr(w, http.StatusServiceUnavailable, "server is draining")
		return false
	}
	// Brownout sheds new work before it sheds running work: any
	// watermark level refuses submissions with a retry hint.
	if level, _ := s.mem.Snapshot(); level != guard.LevelOK {
		w.Header().Set("Retry-After", "10")
		s.metrics.guardSubmissionShed()
		writeErr(w, http.StatusTooManyRequests,
			"server is shedding load (memory above the %s watermark)", level)
		return false
	}
	if n := s.store.inFlight(client); n >= s.cfg.PerClient {
		w.Header().Set("Retry-After", "5")
		writeErr(w, http.StatusTooManyRequests,
			"client %s has %d jobs in flight (limit %d)", client, n, s.cfg.PerClient)
		return false
	}
	return true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.store.list()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.store.get(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j)
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	switch j.State {
	case StateDone, StateDegraded:
	default:
		writeErr(w, http.StatusConflict, "job is %s; no report", j.State)
		return
	}
	f, err := s.fs.OpenFile(s.store.reportPath(id), os.O_RDONLY, 0)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "open report: %v", err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/json")
	io.Copy(w, f)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.State.Terminal() {
		writeErr(w, http.StatusConflict, "job already %s", j.State)
		return
	}
	// Queued: pull it off the queue before a runner claims it. If that
	// races with a claim, fall through to the running path.
	if s.dequeue(id) {
		now := time.Now().UTC()
		s.finishJob(id, func(j *Job) {
			j.State = StateCancelled
			j.FinishedAt = &now
		})
		j, _ := s.store.get(id)
		writeJSON(w, http.StatusOK, j)
		return
	}
	// Shed: parked with no runner and no queue entry, so cancel it
	// directly. submitMu keeps this from interleaving with requeueShed
	// putting the job back on the queue.
	s.submitMu.Lock()
	if cur, ok := s.store.get(id); ok && cur.State == StateShed {
		now := time.Now().UTC()
		s.finishJob(id, func(j *Job) {
			j.State = StateCancelled
			j.FinishedAt = &now
		})
		s.submitMu.Unlock()
		j, _ = s.store.get(id)
		writeJSON(w, http.StatusOK, j)
		return
	}
	s.submitMu.Unlock()
	s.mu.Lock()
	rj := s.running[id]
	s.mu.Unlock()
	if rj != nil {
		rj.cancel(errJobCancelled)
	}
	j, _ = s.store.get(id)
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.store.get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	writeSSE := func(ev event) {
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.name, ev.data)
		flusher.Flush()
	}
	// Open with the current record so a subscriber always has a state
	// baseline even before the first snapshot.
	if data, err := json.Marshal(j); err == nil {
		writeSSE(event{name: "job", data: data})
	}
	ch, cancel := s.hub.subscribe(id)
	defer cancel()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(ev)
			if ev.name == "done" {
				return
			}
		}
	}
}

// handleHealthz is liveness: the process is up and serving HTTP, so it
// always answers 200 — a draining server is still alive and must not be
// restarted by a liveness probe mid-drain. The body carries the same
// readiness detail /readyz gates on, for humans and scrapers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status, _, body := s.health()
	body["status"] = status
	writeJSON(w, http.StatusOK, body)
}

// handleReadyz is readiness: 503 while draining (admission is closed)
// or while any job's checkpoint storage is degraded, so a load balancer
// stops routing new submissions to a server that would refuse or
// mishandle them; 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	status, ready, body := s.health()
	body["status"] = status
	body["ready"] = ready
	code := http.StatusOK
	if !ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, body)
}

// health gathers the shared liveness/readiness detail: a status word,
// the readiness verdict, and the body fields both endpoints report.
// The storage gate counts currently-running jobs whose checkpoints have
// degraded to in-memory — a live signal the state disk is failing — not
// historical degraded jobs, so readiness recovers once they finish.
// cache_degraded reports the shared result cache's pass-through state;
// it never gates readiness — a degraded cache costs time, not
// correctness, so routing submissions away would be wrong.
func (s *Server) health() (status string, ready bool, body map[string]any) {
	s.mu.Lock()
	running := len(s.running)
	degraded := 0
	for _, rj := range s.running {
		if rj.last.StorageDegraded {
			degraded++
		}
	}
	s.mu.Unlock()
	draining := s.draining.Load()
	cacheDegraded := s.cache != nil && s.cache.Stats().Degraded
	// Brownout detail is deliberately non-gating: a browned-out server
	// is refusing new submissions itself (429 + Retry-After carries the
	// backpressure), and flipping readiness too would make the load
	// balancer mask the signal clients should see.
	level, heap := s.mem.Snapshot()
	counts := s.store.countByState()
	bi := buildinfo.Get()
	body = map[string]any{
		"queued":           s.queueDepth(),
		"running":          running,
		"draining":         draining,
		"storage_degraded": degraded,
		"cache_degraded":   cacheDegraded,
		"brownout":         level.String(),
		"heap_bytes":       heap,
		"shed":             counts[StateShed],
		"poisoned":         counts[StatePoisoned],
		"version":          bi.Version,
		"revision":         bi.Revision,
		"go":               bi.GoVersion,
	}
	switch {
	case draining:
		return "draining", false, body
	case degraded > 0:
		return "storage-degraded", false, body
	default:
		return "ok", true, body
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	runningJobs := len(s.running)
	cellsPerSec := 0.0
	for _, rj := range s.running {
		cellsPerSec += rj.last.CellsPerSec
	}
	s.mu.Unlock()
	level, heap := s.mem.Snapshot()
	g := gaugeSet{
		jobsByState:     s.store.countByState(),
		queueDepth:      s.queueDepth(),
		runningJobs:     runningJobs,
		cellsPerSec:     cellsPerSec,
		storageDegraded: s.store.storageDegradedCount(),
		cacheDegraded:   s.cache != nil && s.cache.Stats().Degraded,
		draining:        s.draining.Load(),
		brownoutLevel:   level,
		heapBytes:       heap,
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, g)
}
