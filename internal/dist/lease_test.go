package dist

import (
	"context"
	"testing"
	"time"

	"repro/internal/sched"
)

// leaseCoord builds a coordinator driven entirely by direct calls
// under a fake clock — no goroutines, no timers.
func leaseCoord(t *testing.T, spec sched.Spec, opts CoordinatorOptions) (*Coordinator, *fakeClock) {
	t.Helper()
	clock := newFakeClock()
	opts.Now = clock.Now
	c, err := NewCoordinator("lease", spec, nil, nil, opts)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c, clock
}

// runRange executes cells by index against the shared deterministic
// exec and returns their segments — a worker's compute step without a
// worker.
func runRange(t *testing.T, spec sched.Spec, cells []int) []sched.Segment {
	t.Helper()
	sc := make([]sched.Cell, len(cells))
	for i, ci := range cells {
		sc[i] = spec.Cells[ci]
	}
	run := SchedRunner(spec, distExec, SchedRunnerOptions{
		Retries: testRetries, Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	segs, err := run(context.Background(), sc, nil)
	if err != nil {
		t.Fatalf("runRange: %v", err)
	}
	return segs
}

// TestLeaseExpiryBounded is the acceptance property: a partitioned
// worker's range is re-issued at its deadline — within one lease TTL
// of the last renewal, never before it — and the zombie's late
// duplicate delivery is discarded idempotently with the final report
// unchanged.
func TestLeaseExpiryBounded(t *testing.T) {
	const ttl = 10 * time.Second
	spec := distSpec(8)
	want := baselineReport(t, spec)
	coord, clock := leaseCoord(t, spec, CoordinatorOptions{LeaseTTL: ttl, RangeCells: 4})

	// Worker A leases the first range, B the second; B finishes.
	la := coord.Acquire(AcquireRequest{Worker: "A"})
	if la.State != StateLease || len(la.Lease.Cells) != 4 {
		t.Fatalf("A acquire = %+v", la)
	}
	lb := coord.Acquire(AcquireRequest{Worker: "B"})
	if lb.State != StateLease {
		t.Fatalf("B acquire = %+v", lb)
	}
	if coord.Deliver(DeliverRequest{Worker: "B", Lease: lb.Lease.ID, Segments: runRange(t, spec, lb.Lease.Cells)}).State != DeliverOK {
		t.Fatal("B delivery rejected")
	}

	// A renews just inside the deadline; the renewal restarts the TTL.
	clock.Advance(ttl - time.Second)
	if !coord.Renew(RenewRequest{Worker: "A", Lease: la.Lease.ID}).OK {
		t.Fatal("in-deadline renew refused")
	}
	renewedAt := clock.Now()

	// A now partitions (no more renewals). One instant before the
	// deadline its range must NOT be re-issued…
	clock.Advance(ttl - time.Millisecond)
	if resp := coord.Acquire(AcquireRequest{Worker: "B"}); resp.State != StateWait {
		t.Fatalf("range re-issued before the lease deadline: %+v", resp)
	}
	// …and at the deadline it must be: the bound is exactly one TTL
	// after the last renewal.
	clock.Advance(time.Millisecond)
	resp := coord.Acquire(AcquireRequest{Worker: "B"})
	if resp.State != StateLease {
		t.Fatalf("range not re-issued at the lease deadline: %+v", resp)
	}
	if got := clock.Now().Sub(renewedAt); got != ttl {
		t.Fatalf("re-issue observed %v after last renewal, want exactly %v", got, ttl)
	}
	if len(resp.Lease.Cells) != 4 || resp.Lease.Cells[0] != la.Lease.Cells[0] {
		t.Fatalf("re-issued lease = %+v, want A's range %v", resp.Lease, la.Lease.Cells)
	}

	// The zombie keeps computing and renewing: too late.
	if coord.Renew(RenewRequest{Worker: "A", Lease: la.Lease.ID}).OK {
		t.Fatal("expired lease renewed")
	}

	// B completes the re-issued range first; then A's zombie delivery
	// arrives. Every zombie segment is a duplicate, the lease is
	// reported lost, and the report is unchanged.
	segs := runRange(t, spec, resp.Lease.Cells)
	if coord.Deliver(DeliverRequest{Worker: "B", Lease: resp.Lease.ID, Segments: segs}).State != DeliverOK {
		t.Fatal("B redelivery rejected")
	}
	zr := coord.Deliver(DeliverRequest{Worker: "A", Lease: la.Lease.ID, Segments: runRange(t, spec, la.Lease.Cells)})
	if zr.State != DeliverLost {
		t.Fatalf("zombie delivery state = %q, want %q", zr.State, DeliverLost)
	}
	if zr.Accepted != 0 || zr.Duplicates != 4 {
		t.Fatalf("zombie delivery accepted=%d duplicates=%d, want 0/4", zr.Accepted, zr.Duplicates)
	}

	st := coord.Status()
	if !st.Complete || st.Duplicates != 4 || st.Reissues != 4 {
		t.Fatalf("status = %+v", st)
	}
	rep, err := sched.AssembleReport[distVal](spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	requireSameReport(t, "zombie", want, rep)
}

// TestZombieDeliveryBeforeReissueIsAccepted: a zombie whose lease
// expired but whose cells are still unresolved delivers useful work —
// the segments are identical to a re-execution's, so the coordinator
// takes them and the re-issued range shrinks to nothing on delivery.
func TestZombieDeliveryBeforeReissueIsAccepted(t *testing.T) {
	const ttl = 10 * time.Second
	spec := distSpec(4)
	want := baselineReport(t, spec)
	coord, clock := leaseCoord(t, spec, CoordinatorOptions{LeaseTTL: ttl, RangeCells: 4})

	la := coord.Acquire(AcquireRequest{Worker: "A"})
	clock.Advance(ttl)
	// The lease is expired (sweep runs on the zombie's own delivery),
	// but nothing has been re-issued yet: the segments are novel.
	zr := coord.Deliver(DeliverRequest{Worker: "A", Lease: la.Lease.ID, Segments: runRange(t, spec, la.Lease.Cells)})
	if zr.State != DeliverLost || zr.Accepted != 4 || zr.Duplicates != 0 {
		t.Fatalf("zombie delivery = %+v, want lost with 4 accepted", zr)
	}
	if !coord.Status().Complete {
		t.Fatalf("status = %+v", coord.Status())
	}
	rep, err := sched.AssembleReport[distVal](spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	requireSameReport(t, "zombie-novel", want, rep)
}

// TestWorkerQuarantine: a worker whose leases repeatedly expire walks
// the breaker cycle — threshold expiries open it, cooldown acquires
// are refused, probation decides.
func TestWorkerQuarantine(t *testing.T) {
	const ttl = 10 * time.Second
	spec := distSpec(30)
	coord, clock := leaseCoord(t, spec, CoordinatorOptions{
		LeaseTTL: ttl, RangeCells: 2, MaxReissues: 1000,
		Breaker: sched.BreakerOptions{Threshold: 3, Cooldown: 2},
	})

	// Three granted-then-expired leases open the breaker.
	for i := 0; i < 3; i++ {
		resp := coord.Acquire(AcquireRequest{Worker: "bad"})
		if resp.State != StateLease {
			t.Fatalf("acquire %d = %+v", i, resp)
		}
		clock.Advance(ttl)
		coord.Sweep()
	}
	if coord.Status().Quarantined != 1 {
		t.Fatalf("status = %+v, want 1 quarantined worker", coord.Status())
	}
	// Cooldown: two refusals, each telling the worker to back off a
	// full TTL.
	for i := 0; i < 2; i++ {
		resp := coord.Acquire(AcquireRequest{Worker: "bad"})
		if resp.State != StateWait || resp.RetryAfterMS != ttl.Milliseconds() {
			t.Fatalf("cooldown acquire %d = %+v", i, resp)
		}
	}
	// Probation: a lease again; completing it closes the breaker.
	resp := coord.Acquire(AcquireRequest{Worker: "bad"})
	if resp.State != StateLease {
		t.Fatalf("probation acquire = %+v", resp)
	}
	if coord.Deliver(DeliverRequest{Worker: "bad", Lease: resp.Lease.ID, Segments: runRange(t, spec, resp.Lease.Cells)}).State != DeliverOK {
		t.Fatal("probation delivery rejected")
	}
	if q := coord.Status().Quarantined; q != 0 {
		t.Fatalf("worker still quarantined after probation success")
	}
	// Meanwhile a healthy worker was never impeded.
	if resp := coord.Acquire(AcquireRequest{Worker: "good"}); resp.State != StateLease {
		t.Fatalf("healthy worker refused: %+v", resp)
	}
}

// TestReissueExhaustionDegrades: cells that keep getting leased and
// lost are eventually marked lost — the campaign completes degraded
// (failures in the report) instead of hanging.
func TestReissueExhaustionDegrades(t *testing.T) {
	const ttl = 10 * time.Second
	spec := distSpec(4)
	coord, clock := leaseCoord(t, spec, CoordinatorOptions{
		LeaseTTL: ttl, RangeCells: 4, MaxReissues: 2,
		Breaker: sched.BreakerOptions{Threshold: 100, Cooldown: 1},
	})
	for i := 0; ; i++ {
		if i > 10 {
			t.Fatal("campaign did not complete")
		}
		resp := coord.Acquire(AcquireRequest{Worker: "flaky"})
		if resp.State == StateDone {
			break
		}
		if resp.State != StateLease {
			t.Fatalf("acquire %d = %+v", i, resp)
		}
		clock.Advance(ttl)
	}
	st := coord.Status()
	if !st.Complete || st.Lost != 4 {
		t.Fatalf("status = %+v, want complete with 4 lost", st)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	rep, err := sched.AssembleReport[distVal](spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	if rep.Failed != 4 || rep.Interrupted != 0 {
		t.Fatalf("report failed=%d interrupted=%d, want 4/0", rep.Failed, rep.Interrupted)
	}
}

// TestStallDegrades: with a stall bound, a coordinator no worker ever
// contacts completes degraded instead of waiting forever.
func TestStallDegrades(t *testing.T) {
	spec := distSpec(5)
	coord, clock := leaseCoord(t, spec, CoordinatorOptions{
		LeaseTTL: time.Second, StallTimeout: 30 * time.Second,
	})
	clock.Advance(29 * time.Second)
	coord.Sweep()
	if st := coord.Status(); st.Stalled || st.Complete {
		t.Fatalf("stalled early: %+v", st)
	}
	clock.Advance(time.Second)
	coord.Sweep()
	st := coord.Status()
	if !st.Stalled || !st.Complete || st.Lost != 5 {
		t.Fatalf("status = %+v, want stalled+complete with 5 lost", st)
	}
	if err := coord.Wait(context.Background()); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}
