package dist

import (
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/xrand"
)

// fakeClock is a deterministic clock shared by the coordinator and
// the workers: Sleep advances it instantly, so waits (acquire polls,
// retry backoffs) are what move time forward. Lease expiry then
// depends only on the interleaving of coordination events, not on
// host speed.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Sleep(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Advance(d time.Duration) { c.Sleep(d) }

// distSpec builds a deterministic campaign across three devices.
func distSpec(cells int) sched.Spec {
	spec := sched.Spec{Name: "dist-test", Seed: 7}
	for i := 0; i < cells; i++ {
		spec.Cells = append(spec.Cells, sched.Cell{
			Key:    fmt.Sprintf("cell-%02d", i),
			Device: fmt.Sprintf("dev%d", i%3),
		})
	}
	return spec
}

type distVal struct {
	Key  string `json:"key"`
	Draw int    `json:"draw"`
}

// distExec mixes successes, retried transients and permanent
// failures, all pure functions of the split-seed RNG — so any worker
// executing any cell at any time computes the same result.
func distExec(ctx context.Context, c sched.Cell, rng *xrand.Rand) (distVal, error) {
	draw := rng.Intn(100)
	switch {
	case draw < 8:
		return distVal{}, sched.Transient(fmt.Errorf("flaky %s", c.Key))
	case draw < 20:
		return distVal{}, fmt.Errorf("permanent %s", c.Key)
	}
	return distVal{Key: c.Key, Draw: draw}, nil
}

const testRetries = 2

// baselineReport runs the spec in-process — the single-process oracle
// every distributed run must match.
func baselineReport(t *testing.T, spec sched.Spec) *sched.Report[distVal] {
	t.Helper()
	rep, err := sched.RunContext(context.Background(), spec, distExec, sched.Options[distVal]{
		Workers:    2,
		MaxRetries: testRetries,
		Backoff:    time.Millisecond,
		Collect:    true,
		Sleep:      func(time.Duration) {},
	})
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	return rep
}

// projCell is the byte-identity-relevant projection of one result.
type projCell struct {
	Key, Device string
	Value       distVal
	Err         string
	Attempts    int
	Quarantined bool
	Interrupted bool
}

func project(rep *sched.Report[distVal]) []projCell {
	out := make([]projCell, len(rep.Results))
	for i, r := range rep.Results {
		out[i] = projCell{
			Key: r.Cell.Key, Device: r.Cell.Device,
			Value: r.Value, Attempts: r.Attempts,
			Quarantined: r.Quarantined, Interrupted: r.Interrupted,
		}
		if r.Err != nil {
			out[i].Err = r.Err.Error()
		}
	}
	return out
}

func requireSameReport(t *testing.T, label string, want, got *sched.Report[distVal]) {
	t.Helper()
	pw, pg := project(want), project(got)
	for i := range pw {
		if got.Results[i].Replayed {
			// Replayed cells carry no attempt count (exactly like a
			// local checkpoint replay); artifacts never encode attempts
			// for successful cells, so this is outside byte-identity.
			pw[i].Attempts, pg[i].Attempts = 0, 0
		}
		if pw[i] != pg[i] {
			t.Fatalf("%s: cell %d diverged:\n want %+v\n  got %+v", label, i, pw[i], pg[i])
		}
	}
	if want.Failed != got.Failed || want.Quarantined != got.Quarantined ||
		want.Retried != got.Retried || want.Interrupted != got.Interrupted {
		t.Fatalf("%s: counters diverged: want failed=%d quar=%d retried=%d intr=%d, got failed=%d quar=%d retried=%d intr=%d",
			label, want.Failed, want.Quarantined, want.Retried, want.Interrupted,
			got.Failed, got.Quarantined, got.Retried, got.Interrupted)
	}
	if !reflect.DeepEqual(want.Health, got.Health) {
		t.Fatalf("%s: health diverged: want %+v got %+v", label, want.Health, got.Health)
	}
}

// distRun wires a coordinator plus n workers over in-process
// transports (wrapped per-worker by mkTransport when non-nil) and
// runs the campaign to completion under a shared fake clock.
type distRun struct {
	spec        sched.Spec
	workers     int
	rangeCells  int
	leaseTTL    time.Duration
	maxReissues int
	mkTransport func(i int, inner Transport) Transport
	onStatus    func(Status)
}

func (d distRun) run(t *testing.T) (*sched.Report[distVal], Status) {
	return d.runWithClock(t, nil)
}

func (d distRun) runWithClock(t *testing.T, onClock func(*fakeClock)) (*sched.Report[distVal], Status) {
	t.Helper()
	clock := newFakeClock()
	if onClock != nil {
		onClock(clock)
	}
	ttl := d.leaseTTL
	if ttl <= 0 {
		ttl = 2 * time.Second
	}
	rc := d.rangeCells
	if rc <= 0 {
		rc = 3
	}
	coord, err := NewCoordinator("test", d.spec, nil, nil, CoordinatorOptions{
		LeaseTTL:    ttl,
		RangeCells:  rc,
		MaxReissues: d.maxReissues,
		Now:         clock.Now,
		OnStatus:    d.onStatus,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	hub := NewHub()
	if err := hub.Register("test", coord); err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < d.workers; i++ {
		tr := Transport(hub.LocalTransport("test"))
		if d.mkTransport != nil {
			tr = d.mkTransport(i, tr)
		}
		w := NewWorker(tr, d.spec,
			SchedRunner(d.spec, distExec, SchedRunnerOptions{
				Parallel: 2, Retries: testRetries, Backoff: time.Millisecond,
				Sleep: func(time.Duration) {},
			}),
			WorkerOptions{
				ID:          fmt.Sprintf("w%d", i),
				RPCBackoff:  50 * time.Millisecond,
				AcquireWait: 100 * time.Millisecond,
				Sleep:       clock.Sleep,
				Now:         clock.Now,
			})
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Worker errors are expected under fault injection (crash,
			// partition exhaustion); correctness is judged on the
			// assembled report.
			_ = w.Run(ctx)
		}()
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator did not complete: %v (status %+v)", err, coord.Status())
	}
	cancel()
	wg.Wait()
	rep, err := sched.AssembleReport[distVal](d.spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	return rep, coord.Status()
}

// TestDistributedMatchesLocal: a clean distributed run matches the
// single-process oracle at shard counts 1, 2 and 4.
func TestDistributedMatchesLocal(t *testing.T) {
	spec := distSpec(16)
	want := baselineReport(t, spec)
	for _, shards := range []int{1, 2, 4} {
		got, st := distRun{spec: spec, workers: shards, maxReissues: 10_000}.run(t)
		requireSameReport(t, fmt.Sprintf("shards=%d", shards), want, got)
		if !st.Complete || st.Done != len(spec.Cells) {
			t.Fatalf("shards=%d: status %+v", shards, st)
		}
	}
}

// TestDistributedOverHTTP: the same campaign through a real HTTP hub
// and HTTPTransport workers, with real clocks.
func TestDistributedOverHTTP(t *testing.T) {
	spec := distSpec(12)
	want := baselineReport(t, spec)

	hub := NewHub()
	coord, err := NewCoordinator("http-test", spec, nil, nil, CoordinatorOptions{
		LeaseTTL: 5 * time.Second, RangeCells: 4,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	if err := hub.Register("http-test", coord); err != nil {
		t.Fatalf("Register: %v", err)
	}
	srv := httptest.NewServer(hub)
	defer srv.Close()

	infos, err := ListCampaigns(context.Background(), srv.URL, nil)
	if err != nil {
		t.Fatalf("ListCampaigns: %v", err)
	}
	if len(infos) != 1 || infos[0].Name != "http-test" || infos[0].Manifest != spec.Manifest() {
		t.Fatalf("ListCampaigns = %+v", infos)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := NewWorker(&HTTPTransport{BaseURL: srv.URL, Campaign: "http-test"}, spec,
			SchedRunner(spec, distExec, SchedRunnerOptions{
				Parallel: 2, Retries: testRetries, Backoff: time.Millisecond,
				Sleep: func(time.Duration) {},
			}),
			WorkerOptions{ID: fmt.Sprintf("hw%d", i), AcquireWait: 20 * time.Millisecond})
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	wg.Wait()
	got, err := sched.AssembleReport[distVal](spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	requireSameReport(t, "http", want, got)
}

// TestManifestMismatchRefused: a worker whose local spec disagrees
// with the coordinator's must refuse work.
func TestManifestMismatchRefused(t *testing.T) {
	spec := distSpec(6)
	coord, err := NewCoordinator("mm", spec, nil, nil, CoordinatorOptions{})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	hub := NewHub()
	hub.Register("mm", coord)
	skewed := distSpec(7) // one extra cell: different grid
	w := NewWorker(hub.LocalTransport("mm"), skewed, SchedRunner(skewed, distExec, SchedRunnerOptions{}),
		WorkerOptions{ID: "skew", Sleep: func(time.Duration) {}})
	if err := w.Run(context.Background()); err == nil {
		t.Fatal("skewed worker accepted work")
	}
}

// TestCoordinatorSeeding: checkpoint-seeded cells are replayed, not
// re-issued, and the assembled report marks them Replayed.
func TestCoordinatorSeeding(t *testing.T) {
	spec := distSpec(9)
	full := baselineReport(t, spec)
	segs, err := sched.ExportSegments(full)
	if err != nil {
		t.Fatalf("ExportSegments: %v", err)
	}
	// Seed the first four cells that succeeded, as a resume would.
	seed := map[string]sched.Segment{}
	for _, s := range segs {
		if len(seed) == 4 {
			break
		}
		if s.Err == "" {
			s.Replayed = true
			seed[s.Key] = s
		}
	}
	clock := newFakeClock()
	coord, err := NewCoordinator("seeded", spec, nil, seed, CoordinatorOptions{
		Now: clock.Now, RangeCells: 2,
	})
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	hub := NewHub()
	hub.Register("seeded", coord)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	w := NewWorker(hub.LocalTransport("seeded"), spec,
		SchedRunner(spec, distExec, SchedRunnerOptions{Parallel: 2, Retries: testRetries, Backoff: time.Millisecond, Sleep: func(time.Duration) {}}),
		WorkerOptions{ID: "w0", Sleep: clock.Sleep, Now: clock.Now})
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	rep, err := sched.AssembleReport[distVal](spec, coord.Segments(), nil)
	if err != nil {
		t.Fatalf("AssembleReport: %v", err)
	}
	if rep.Replayed != len(seed) {
		t.Fatalf("Replayed = %d, want %d", rep.Replayed, len(seed))
	}
	requireSameReport(t, "seeded", full, rep)
}
