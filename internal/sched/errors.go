package sched

import "errors"

// transientError marks a failure worth retrying: the cell reported a
// condition that may clear (a busy simulated device, a throttled
// backend) rather than a deterministic defect in the work itself.
type transientError struct{ err error }

func (e *transientError) Error() string { return "transient: " + e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err so the scheduler retries the cell (up to
// Options.MaxRetries, with backoff). A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// with Transient, or carries its own transience verdict via a
// `Transient() bool` method — the hook through which typed device
// errors (gpu.DeviceError) classify themselves without the producing
// layer importing sched.
func IsTransient(err error) bool {
	var t *transientError
	if errors.As(err, &t) {
		return true
	}
	var self interface{ Transient() bool }
	return errors.As(err, &self) && self.Transient()
}

// ErrQuarantined marks cells skipped because their device's circuit
// breaker was open (see Options.Breaker). Quarantined cells appear in
// the report — never silently dropped — with this error and
// CellResult.Quarantined set.
var ErrQuarantined = errors.New("sched: cell quarantined: device circuit breaker open")
