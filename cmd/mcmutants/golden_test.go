package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// CLI-layer golden byte-identity. The committed
// testdata/campaign_conformance.golden.json was produced before the
// gpu executor rewrite (regenerate with UPDATE_GOLDEN=1). A campaign
// artifact folds together every layer — kernelgen, the device
// executor, outcome classification, sched's split-seed parallel merge
// and the canonical artifact encoding — so byte-identity here, at
// both -parallel 1 and -parallel 8, is the end-to-end proof that the
// rewrite changed no observable behavior. Conformance kind on
// purpose: its artifact carries no wall-time fields.
func TestGoldenCampaignArtifact(t *testing.T) {
	const golden = "testdata/campaign_conformance.golden.json"
	dir := t.TempDir()
	artifact := func(parallel int) []byte {
		out := filepath.Join(dir, "report-p"+strconv.Itoa(parallel)+".json")
		_, err := capture(t, func() error {
			return run([]string{"campaign", "-kind", "conformance",
				"-devices", "AMD,Intel", "-envs", "pte", "-iters", "6",
				"-seed", "13", "-parallel", strconv.Itoa(parallel),
				"-quiet", "-out", out})
		})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	p1 := artifact(1)
	p8 := artifact(8)
	if !bytes.Equal(p1, p8) {
		t.Fatal("campaign artifact differs between -parallel 1 and -parallel 8")
	}

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, p1, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d artifact bytes to %s", len(p1), golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden artifact missing (run with UPDATE_GOLDEN=1 to capture): %v", err)
	}
	if !bytes.Equal(p1, want) {
		t.Errorf("campaign artifact diverged from pre-rewrite baseline (%d bytes vs %d golden)",
			len(p1), len(want))
	}
}
