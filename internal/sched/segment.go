package sched

import (
	"encoding/json"
	"errors"
	"fmt"
)

// Segment is one settled cell in wire form: the unit a distributed
// worker delivers to its coordinator, and the unit the coordinator
// merges into a report. It is deliberately shaped like a checkpoint
// record — an encoded value keyed by cell identity — so the two
// durability paths (local JSONL checkpoint, remote segment delivery)
// carry the same information and compose: the coordinator persists
// accepted segments with Checkpoint.RecordRaw and seeds replayed
// checkpoint records back in as segments.
//
// A segment exists only for cells that resolved: succeeded (Value
// set) or permanently failed (Err set). Interrupted and aborted cells
// produce no segment — they are pending, and a missing segment is how
// AssembleReport knows a cell is still owed.
type Segment struct {
	// Key is the cell key within the campaign spec.
	Key string `json:"key"`
	// Value is the cell's encoded result; empty when Err is set.
	Value json.RawMessage `json:"value,omitempty"`
	// Err is the permanent failure rendered as text; empty on success.
	Err string `json:"err,omitempty"`
	// Attempts counts executions, so retry accounting survives the trip.
	Attempts int `json:"attempts,omitempty"`
	// Replayed marks segments restored from a checkpoint rather than
	// executed this run. Workers never set it; the coordinator does,
	// when seeding a resumed campaign.
	Replayed bool `json:"replayed,omitempty"`
	// CacheHit marks segments a worker served from its local result
	// cache instead of executing. Like Executed/Replayed it describes
	// how the work happened, not what the result is — no artifact
	// encodes it — so the coordinator can aggregate a fleet-wide hit
	// rate without touching the byte-identity contract.
	CacheHit bool `json:"cache_hit,omitempty"`
}

// SubSpec returns the spec restricted to the cells at the given spec
// indexes, preserving Name and Seed — and therefore every cell's
// split-seed RNG stream. A worker running a sub-spec produces
// per-cell results identical to the full campaign's, which is the
// invariant that makes distributed merge byte-identical.
func SubSpec(spec Spec, indexes []int) (Spec, error) {
	sub := Spec{Name: spec.Name, Seed: spec.Seed, Cells: make([]Cell, 0, len(indexes))}
	for _, i := range indexes {
		if i < 0 || i >= len(spec.Cells) {
			return Spec{}, fmt.Errorf("sched: sub-spec index %d outside campaign %q (%d cells)", i, spec.Name, len(spec.Cells))
		}
		sub.Cells = append(sub.Cells, spec.Cells[i])
	}
	return sub, sub.Validate()
}

// ExportSegments flattens a report's resolved cells into segments.
// Interrupted and aborted cells are skipped — they carry no result to
// deliver — so exporting a drained partial report is safe: the
// coordinator re-issues whatever is missing.
func ExportSegments[R any](rep *Report[R]) ([]Segment, error) {
	segs := make([]Segment, 0, len(rep.Results))
	for _, r := range rep.Results {
		if r.Interrupted || (r.Err != nil && errors.Is(r.Err, ErrAborted)) {
			continue
		}
		seg := Segment{Key: r.Cell.Key, Attempts: r.Attempts, Replayed: r.Replayed, CacheHit: r.CacheHit}
		if r.Err != nil {
			seg.Err = r.Err.Error()
		} else {
			raw, err := json.Marshal(r.Value)
			if err != nil {
				return nil, fmt.Errorf("sched: encode segment %s: %w", r.Cell.Key, err)
			}
			seg.Value = raw
		}
		segs = append(segs, seg)
	}
	return segs, nil
}

// AssembleReport reconstructs a campaign report from delivered
// segments. Cells without a segment are marked Interrupted — pending,
// exactly like cells abandoned by a local drain. When breaker is
// non-nil the same deterministic post-pass a local breaker run ends
// with settles quarantine verdicts, so per-cell records, Failed,
// Quarantined, Retried and Health are identical to a single-process
// run of the same spec. (Executed and Replayed describe the work this
// assembly actually saw — a distributed run may execute cells a local
// breaker would have skipped live — and are not part of the
// byte-identity contract; no artifact encodes them.)
func AssembleReport[R any](spec Spec, segs map[string]Segment, breaker *BreakerOptions) (*Report[R], error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rep := &Report[R]{Spec: spec, Results: make([]CellResult[R], len(spec.Cells))}
	for i, cell := range spec.Cells {
		r := &rep.Results[i]
		r.Cell = cell
		seg, ok := segs[cell.Key]
		if !ok {
			// Mirror the local drain exactly: a missing segment is a
			// pending cell, carrying the bare sentinel.
			r.Err = ErrInterrupted
			r.Interrupted = true
			rep.Interrupted++
			continue
		}
		if seg.Replayed {
			if err := json.Unmarshal(seg.Value, &r.Value); err != nil {
				return nil, fmt.Errorf("sched: decode replayed segment %s: %w", cell.Key, err)
			}
			r.Replayed = true
			rep.Replayed++
			continue
		}
		r.Attempts = seg.Attempts
		if seg.CacheHit {
			r.CacheHit = true
			rep.CacheHits++
		} else {
			rep.Executed++
		}
		if seg.Err != "" {
			r.Err = errors.New(seg.Err)
			rep.Failed++
		} else if err := json.Unmarshal(seg.Value, &r.Value); err != nil {
			return nil, fmt.Errorf("sched: decode segment %s: %w", cell.Key, err)
		}
		if seg.Attempts > 1 {
			rep.Retried += seg.Attempts - 1
		}
	}
	if breaker != nil {
		applyBreaker(rep, *breaker)
	}
	return rep, nil
}
