package gpu

// Allocation and reuse tests for the device's exec scratch: a warm
// Device must run kernels — including the per-event emit path with
// tracing off — without allocating, and reusing the scratch must not
// change any simulated result.

import (
	"testing"

	"repro/internal/xrand"
)

// allocSpec is a moderately parallel kernel whose run retires hundreds
// of instructions, so any per-event allocation multiplies visibly.
func allocSpec() LaunchSpec {
	mp0 := Program{
		{Op: OpStore, Addr: 0, Imm: 1},
		{Op: OpFence},
		{Op: OpStore, Addr: 1, Imm: 1},
	}
	mp1 := Program{
		{Op: OpLoad, Addr: 1, Reg: 0},
		{Op: OpFence},
		{Op: OpLoad, Addr: 0, Reg: 1},
	}
	stress := Program{
		{Op: OpStore, Addr: 2, Imm: 7},
		{Op: OpLoad, Addr: 3, Reg: 0},
		{Op: OpStore, Addr: 4, Imm: 9},
		{Op: OpLoad, Addr: 2, Reg: 1},
		{Op: OpExchange, Addr: 5, Imm: 3, Reg: 2},
	}
	progs := make([]Program, 0, 16)
	progs = append(progs, mp0, mp1)
	for len(progs) < cap(progs) {
		progs = append(progs, stress)
	}
	return LaunchSpec{
		WorkgroupSize: 2,
		Workgroups:    8,
		MemWords:      64,
		Programs:      progs,
	}
}

// TestRunZeroAllocsWarm asserts the device hot path is allocation-free
// once warm: with tracing off, the per-event emit check is a branch,
// not an append, and every buffer the simulation needs is reset in
// place. This is the per-event half of the steady-state zero-alloc
// contract (the harness half lives in the repo-root hotpath tests).
func TestRunZeroAllocsWarm(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	spec := allocSpec()
	d := dev(t, intelProfile(), Bugs{})
	rng := xrand.New(11)
	var events int64
	for i := 0; i < 4; i++ {
		run, err := d.Run(spec, rng)
		if err != nil {
			t.Fatal(err)
		}
		events = run.Stats.Instructions
	}
	if events < 64 {
		t.Fatalf("warm run retired only %d instructions; spec too small to trust", events)
	}
	state := *rng
	allocs := testing.AllocsPerRun(20, func() {
		*rng = state
		if _, err := d.Run(spec, rng); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm Device.Run: %v allocs/run over %d events, want 0", allocs, events)
	}
}

// TestDeviceReuseDeterministic runs the same seeded kernel on a fresh
// device and on a device warmed by unrelated work, byte-comparing
// registers, memory and counters: scratch reuse must be invisible to
// the simulation.
func TestDeviceReuseDeterministic(t *testing.T) {
	spec := allocSpec()
	fresh := dev(t, intelProfile(), Bugs{})
	run, err := fresh.Run(spec, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotRun(run)

	warm := dev(t, intelProfile(), Bugs{})
	other := twoThreadSpec(2,
		Program{{Op: OpStore, Addr: 0, Imm: 1}, {Op: OpStore, Addr: 1, Imm: 1}},
		Program{{Op: OpLoad, Addr: 1, Reg: 0}, {Op: OpLoad, Addr: 0, Reg: 1}},
	)
	for i := 0; i < 3; i++ {
		if _, err := warm.Run(other, xrand.New(uint64(100+i))); err != nil {
			t.Fatal(err)
		}
	}
	run, err = warm.Run(spec, xrand.New(23))
	if err != nil {
		t.Fatal(err)
	}
	got := snapshotRun(run)

	if got.Stats != want.Stats {
		t.Fatalf("warm device stats differ:\n got %+v\nwant %+v", got.Stats, want.Stats)
	}
	if got.SimSeconds != want.SimSeconds {
		t.Fatalf("warm device sim time %v, want %v", got.SimSeconds, want.SimSeconds)
	}
	for i := range want.Registers {
		for j := range want.Registers[i] {
			if got.Registers[i][j] != want.Registers[i][j] {
				t.Fatalf("warm device register t%d r%d = %d, want %d",
					i, j, got.Registers[i][j], want.Registers[i][j])
			}
		}
	}
	for a := range want.Memory {
		if got.Memory[a] != want.Memory[a] {
			t.Fatalf("warm device memory[%d] = %d, want %d", a, got.Memory[a], want.Memory[a])
		}
	}
}
